//! Property: serving is a transparent wrapper — for random designs, any
//! worker count and any cache state, [`ServeHandle::predict`] returns
//! predictions bitwise-identical to a direct [`Lhnn::predict`] call.

use std::sync::Arc;

use lh_graph::FeatureSet;
use lhnn::{GraphOps, Lhnn, LhnnConfig};
use lhnn_serve::{EngineConfig, ModelRegistry, PredictRequest, ServeEngine};
use proptest::prelude::*;

fn design(seed: u64, n_cells: usize, grid: u32) -> (Arc<GraphOps>, Arc<FeatureSet>) {
    let (ops, features) = lhnn_data::serving_inputs(seed, n_cells, grid).expect("build design");
    (Arc::new(ops), Arc::new(features))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Cold cache, warm cache and every worker AND shard count agree
    /// bitwise with the direct forward.
    #[test]
    fn served_prediction_is_bitwise_identical(
        design_seed in 0u64..1000,
        model_seed in 0u64..1000,
        n_cells in 60usize..140,
        grid in 6u32..10,
        workers in 1usize..5,
        shards in 1usize..4,
        cache_capacity in 0usize..8,
    ) {
        let (ops, features) = design(design_seed, n_cells, grid);
        let model = Lhnn::new(LhnnConfig::default(), model_seed);
        let direct = model.predict(&ops, &features);

        let registry = Arc::new(ModelRegistry::new());
        registry.register("m", model).expect("register");
        let engine = ServeEngine::new(
            registry,
            EngineConfig { workers, shards, cache_capacity, ..Default::default() },
        );
        let handle = engine.handle();
        let req = PredictRequest::new("m", ops, features);

        // cold (computed) and repeated (cached when capacity > 0) replies
        let cold = handle.predict(&req).expect("cold predict");
        let warm = handle.predict(&req).expect("warm predict");
        prop_assert!(!cold.cached);
        prop_assert_eq!(warm.cached, cache_capacity > 0);
        for reply in [&cold, &warm] {
            // tolerance 0.0 = bitwise equality
            prop_assert!(direct.cls_prob.approx_eq(&reply.prediction.cls_prob, 0.0));
            prop_assert!(direct.reg.approx_eq(&reply.prediction.reg, 0.0));
        }

        // a concurrent burst through the pool agrees too
        let replies = handle.predict_batch(&vec![req; 4]);
        for reply in replies {
            let reply = reply.expect("batch predict");
            prop_assert!(direct.cls_prob.approx_eq(&reply.prediction.cls_prob, 0.0));
            prop_assert!(direct.reg.approx_eq(&reply.prediction.reg, 0.0));
        }
        engine.shutdown();
    }
}
