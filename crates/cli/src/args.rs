//! Minimal flag parsing for the `lhnn` CLI (no external dependency).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses a raw argument list (without the program name).
    pub fn parse(raw: &[String]) -> Args {
        let mut out = Args::default();
        let mut it = raw.iter().peekable();
        if let Some(first) = it.peek() {
            if !first.starts_with("--") {
                out.command = it.next().expect("peeked").clone();
            }
        }
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = match it.peek() {
                    Some(v) if !v.starts_with("--") => it.next().expect("peeked").clone(),
                    _ => "true".to_string(),
                };
                out.flags.insert(key.to_string(), value);
            }
        }
        out
    }

    /// String flag with a default.
    pub fn get(&self, key: &str, default: &str) -> String {
        self.flags.get(key).cloned().unwrap_or_else(|| default.to_string())
    }

    /// Optional string flag.
    pub fn opt(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Parsed numeric flag with a default (falls back on parse failure).
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.flags.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// Whether a boolean flag is present.
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| (*x).to_string()).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = Args::parse(&argv(&["route", "--dir", "/tmp", "--grid", "24", "--compare"]));
        assert_eq!(a.command, "route");
        assert_eq!(a.get("dir", ""), "/tmp");
        assert_eq!(a.num::<u32>("grid", 0), 24);
        assert!(a.has("compare"));
        assert!(!a.has("missing"));
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(&argv(&["train"]));
        assert_eq!(a.num::<usize>("epochs", 40), 40);
        assert_eq!(a.get("out", "model.lhnn"), "model.lhnn");
        assert!(a.opt("dir").is_none());
    }

    #[test]
    fn no_command_is_empty() {
        let a = Args::parse(&argv(&["--help"]));
        assert_eq!(a.command, "");
        assert!(a.has("help"));
    }

    #[test]
    fn bad_numbers_fall_back() {
        let a = Args::parse(&argv(&["x", "--grid", "abc"]));
        assert_eq!(a.num::<u32>("grid", 7), 7);
    }
}
