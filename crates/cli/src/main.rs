//! `lhnn` — command-line interface for the LHNN congestion-prediction
//! pipeline.
//!
//! ```text
//! lhnn generate --cells 800 --grid 24 --seed 7 --name mydesign --out ./designs
//! lhnn stats    --dir ./designs --design mydesign
//! lhnn route    --dir ./designs --design mydesign --grid 24 [--tracks 14] [--pgm demand]
//! lhnn train    --scale 0.5 --epochs 60 --out model.lhnn
//! lhnn predict  --model model.lhnn --dir ./designs --design mydesign --grid 24 [--compare]
//! ```

mod args;
mod commands;

use args::Args;

const USAGE: &str = "\
lhnn — lattice hypergraph neural network for VLSI congestion prediction

USAGE:
  lhnn generate --cells N --grid G [--seed S] [--name NAME] [--out DIR]
      synthesise a circuit, place it, write Bookshelf files
  lhnn stats --dir DIR --design NAME
      netlist statistics (degree histogram, Rent exponent)
  lhnn stats --metrics FILE
      read back a Prometheus exposition written by a bench's --metrics
      dump and print every series
  lhnn route --dir DIR --design NAME --grid G [--tracks T] [--pgm PREFIX]
      global-route a placed Bookshelf design, print congestion stats
  lhnn train [--model lhnn|hybridnet] [--scale F] [--epochs N] [--seed S]
             [--threads N] [--batch B] --out MODEL
      train the selected architecture (default lhnn) on the synthetic
      suite, save the model. --batch B (default 1 = the paper's per-sample
      stepping) accumulates gradients over B samples per optimiser step;
      --threads N shards each batch across N workers — for a given --batch
      the loss trajectory is bitwise identical at any thread count
  lhnn predict --model MODEL_FILE --dir DIR --design NAME --grid G
               [--threshold T] [--threads N] [--compare] [--pgm FILE]
      predict a congestion map for a placed design (served through the
      inference engine; the architecture is read from the checkpoint's
      kind tag; --threshold sets the congestion cutoff, default 0.5;
      --threads sets the intra-op compute-pool width)
  lhnn serve-bench [--model lhnn|hybridnet] [--designs N] [--requests N]
                   [--workers N] [--clients N] [--cells N] [--grid G]
                   [--cache N] [--threshold T] [--threads N]
                   [--metrics [PREFIX]] [--no-metrics]
      drive synthetic designs through the lhnn-serve engine and report
      latency percentiles, throughput, parallel speedup, cache hit rate and
      the shared intra-op compute-pool configuration. Prints the per-stage
      latency breakdown and flight-recorder events; --metrics also writes
      PREFIX.prom / PREFIX.json (default results/METRICS_serve_bench);
      --no-metrics disables instrumentation entirely
  lhnn loop-bench [--model lhnn|hybridnet] [--cells N] [--grid G] [--seed S]
                  [--rounds N] [--move-pct P] [--threads N] [--json FILE]
                  [--designs D] [--shards S] [--workers W]
                  [--metrics [PREFIX]] [--no-metrics]
      placement-in-the-loop benchmark: replay the placer's own iteration
      deltas through a stateful serving session (incremental graph/feature
      updates), verify bitwise parity against from-scratch rebuilds, and
      measure the k-cell-move incremental update vs a full rebuild
      (results also written as BENCH JSON, default
      results/BENCH_incremental.json). With --designs D (D > 1) it runs
      the concurrent mode instead: D placement loops drive pipelined
      sessions (submit_update tickets + predict) over an S-shard engine,
      measured against serially-driven sessions on one shard, bitwise
      parity enforced (JSON default results/BENCH_serve_shard.json, now
      carrying aggregate p50/p95/p99 and per-shard p99 tail latency).
      Both modes print the per-stage latency breakdown (queue -> cache ->
      drain -> dilate -> forward -> splice; rebin -> graph_patch ->
      feature_patch -> rebuild) and the flight recorder; --metrics also
      writes PREFIX.prom / PREFIX.json (default results/METRICS_loop_bench)
";

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = Args::parse(&raw);
    let result = match args.command.as_str() {
        "generate" => commands::generate(&args),
        "stats" => commands::stats(&args),
        "route" => commands::route(&args),
        "train" => commands::train(&args),
        "predict" => commands::predict(&args),
        "serve-bench" => commands::serve_bench(&args),
        "loop-bench" => commands::loop_bench(&args),
        _ => {
            eprint!("{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
