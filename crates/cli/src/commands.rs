//! Implementations of the `lhnn` subcommands.

use std::error::Error;
use std::fs::File;
use std::path::Path;
use std::sync::Arc;

use lh_graph::{ChannelMode, FeatureSet, LhGraph, LhGraphConfig, Targets};
use lhnn::{
    evaluate, train as train_model, AblationSpec, CongestionModel, ForwardDirty, GraphOps,
    HybridNet, HybridNetConfig, IncrementalForward, LatticePipeline, Lhnn, LhnnConfig, Sample,
    SpliceOutcome, TrainConfig,
};
use lhnn_data::{
    ascii_map, write_bench_json, write_pgm, BenchRecord, DatasetConfig, PreparedDataset,
};
use lhnn_serve::obs::{parse_prometheus, FlightEvent, Snapshot, PREDICT_STAGES, UPDATE_STAGES};
use lhnn_serve::{EngineConfig, ModelRegistry, PredictRequest, ServeEngine, SessionConfig};
use neurograd::Confusion;
use vlsi_netlist::synth::{generate as synth_generate, SynthConfig};
use vlsi_netlist::{
    bookshelf, netlist_stats, rent_exponent, CellId, Circuit, GcellGrid, Placement, PlacementDelta,
    Point, Rect,
};
use vlsi_place::GlobalPlacer;
use vlsi_route::{route as route_circuit, CapacityConfig, Dir, RouterConfig};

use crate::args::Args;

type CmdResult = Result<(), Box<dyn Error>>;

/// `lhnn generate`: synthesise + place + write Bookshelf.
pub fn generate(args: &Args) -> CmdResult {
    let cfg = SynthConfig {
        name: args.get("name", "design"),
        seed: args.num("seed", 1u64),
        n_cells: args.num("cells", 800usize),
        grid_nx: args.num("grid", 24u32),
        grid_ny: args.num("grid", 24u32),
        ..SynthConfig::default()
    };
    let out_dir = args.get("out", ".");
    let synth = synth_generate(&cfg)?;
    let grid = cfg.grid();
    let placed = GlobalPlacer::default().place_synth(&synth, &grid)?;
    bookshelf::write_design(Path::new(&out_dir), &synth.circuit, &placed.placement)?;
    println!(
        "generated `{}`: {} cells ({} terminals), {} nets, hpwl {:.0}",
        cfg.name,
        synth.circuit.num_cells(),
        synth.circuit.num_terminals(),
        synth.circuit.num_nets(),
        placed.hpwl
    );
    println!("wrote {out_dir}/{}.{{aux,nodes,nets,pl}}", cfg.name);
    Ok(())
}

fn load_design(args: &Args) -> Result<(Circuit, Placement), Box<dyn Error>> {
    let dir = args.opt("dir").ok_or("missing --dir")?.to_string();
    let design = args.opt("design").ok_or("missing --design")?;
    let (circuit, placement) = bookshelf::read_design(Path::new(&dir), design)?;
    circuit.validate()?;
    Ok((circuit, placement))
}

fn grid_for(args: &Args, circuit: &Circuit) -> GcellGrid {
    let g = args.num("grid", 24u32);
    let die = if circuit.die.area() > 0.0 { circuit.die } else { Rect::new(0.0, 0.0, 1.0, 1.0) };
    GcellGrid::new(die, g, g)
}

/// Builds the architecture selected by `--model` (`lhnn` | `hybridnet`)
/// — the model-zoo factory shared by `train`, `serve-bench` and
/// `loop-bench`. (`predict` needs no selector: the checkpoint's kind tag
/// picks the architecture at load time.)
fn build_arch(
    arch: &str,
    threads: usize,
    seed: u64,
) -> Result<Box<dyn CongestionModel>, Box<dyn Error>> {
    match arch {
        "lhnn" => Ok(Box::new(Lhnn::new(LhnnConfig { threads, ..LhnnConfig::default() }, seed))),
        "hybridnet" => Ok(Box::new(HybridNet::new(
            HybridNetConfig { threads, ..HybridNetConfig::default() },
            seed,
        ))),
        other => Err(format!("unknown --model `{other}` (expected `lhnn` or `hybridnet`)").into()),
    }
}

/// `lhnn stats`: netlist statistics — or, with `--metrics FILE`, a read
/// back of a Prometheus exposition written by a bench's `--metrics` dump.
pub fn stats(args: &Args) -> CmdResult {
    if let Some(path) = args.opt("metrics") {
        return metrics_report(path);
    }
    let (circuit, _) = load_design(args)?;
    let s = netlist_stats(&circuit);
    println!("design: {}", circuit.name);
    println!("cells: {} ({} terminals)", circuit.num_cells(), circuit.num_terminals());
    println!(
        "nets: {} (mean degree {:.2}, max {})",
        circuit.num_nets(),
        s.mean_degree,
        s.max_degree
    );
    println!("2-pin fraction: {:.1}%", s.two_pin_fraction * 100.0);
    println!("mean nets per cell: {:.2}", s.mean_cell_fanout);
    match rent_exponent(&circuit, 7) {
        Some(p) => println!("rent exponent (sampled): {p:.2}"),
        None => println!("rent exponent: n/a (too few movable cells)"),
    }
    println!("degree histogram (degree: count):");
    for (d, n) in s.degree_histogram.iter().enumerate().filter(|(_, &n)| n > 0) {
        println!("  {d:>3}: {n}");
    }
    Ok(())
}

/// `lhnn route`: global routing + congestion report.
pub fn route(args: &Args) -> CmdResult {
    let (circuit, placement) = load_design(args)?;
    let grid = grid_for(args, &circuit);
    let tracks = args.num("tracks", 14.0f32);
    let rcfg = RouterConfig {
        capacity: CapacityConfig { h_tracks: tracks, v_tracks: tracks, ..Default::default() },
        ..Default::default()
    };
    let routed = route_circuit(&circuit, &placement, &grid, &[], &rcfg)?;
    println!("design: {} on {}x{} g-cells", circuit.name, grid.nx(), grid.ny());
    println!("wirelength: {} g-cell steps", routed.wirelength);
    println!(
        "overflowed edges: {} (total overflow {:.1})",
        routed.overflowed_edges, routed.total_overflow
    );
    println!(
        "congestion rate: {:.2}% (h {:.2}%, v {:.2}%)",
        routed.congestion_rate() * 100.0,
        routed.labels.congestion_rate(Dir::H) * 100.0,
        routed.labels.congestion_rate(Dir::V) * 100.0
    );
    if let Some(prefix) = args.opt("pgm") {
        let (nx, ny) = (grid.nx() as usize, grid.ny() as usize);
        write_pgm(&routed.labels.demand_h, nx, ny, Path::new(&format!("{prefix}_demand_h.pgm")))?;
        write_pgm(&routed.labels.demand_v, nx, ny, Path::new(&format!("{prefix}_demand_v.pgm")))?;
        println!("wrote {prefix}_demand_h.pgm / {prefix}_demand_v.pgm");
    }
    Ok(())
}

/// `lhnn train`: train the selected architecture on the synthetic suite
/// and save the model.
pub fn train(args: &Args) -> CmdResult {
    let scale = args.num("scale", 0.5f32);
    let epochs = args.num("epochs", 60usize);
    let seed = args.num("seed", 0u64);
    let arch = args.get("model", "lhnn");
    let out = args.get("out", "model.lhnn");
    // --threads 0 (the default) inherits the process-wide compute pool;
    // batch defaults to 1 (the paper's per-sample stepping) so --threads
    // alone never changes the optimisation trajectory; --batch opts into
    // gradient accumulation, which the threads then shard.
    let threads = args.num("threads", 0usize);
    let batch_size = args.num("batch", 1usize).max(1);
    eprintln!("building training suite (scale {scale})...");
    let ds = DatasetConfig { scale, ..Default::default() };
    let prep = PreparedDataset::build(&ds)?;
    let train_set = prep.train_samples();
    let test_set = prep.test_samples();
    let mut model = build_arch(&arch, threads, seed)?;
    // the pool width comes from the model's config knob, not the raw flag
    model.configure_pool();
    eprintln!(
        "training {arch} ({} parameters) for {epochs} epochs on {} designs \
         ({} data-parallel threads, batch {batch_size})...",
        model.num_parameters(),
        train_set.len(),
        threads.max(1)
    );
    let cfg =
        TrainConfig { epochs, seed, threads: threads.max(1), batch_size, ..Default::default() };
    let history = train_model(model.as_mut(), &train_set, &AblationSpec::full(), &cfg);
    let eval = evaluate(model.as_ref(), &test_set, &AblationSpec::full());
    println!(
        "final loss {:.4}; held-out F1 {:.3}, accuracy {:.3}",
        history.epoch_loss.last().copied().unwrap_or(f32::NAN),
        eval.f1,
        eval.accuracy
    );
    model.save_to(&mut File::create(&out)?)?;
    println!("model written to {out} (kind {arch})");
    Ok(())
}

/// `lhnn predict`: predict a congestion map for a design through the
/// serving engine (registry + worker pool + prediction cache).
pub fn predict(args: &Args) -> CmdResult {
    let model_path = args.opt("model").ok_or("missing --model")?;
    let threshold = args.num("threshold", 0.5f32);
    let compute_threads = args.num("threads", 0usize);
    let (circuit, placement) = load_design(args)?;
    let grid = grid_for(args, &circuit);
    let graph = LhGraph::build(&circuit, &placement, &grid, &LhGraphConfig::default())?;
    let (gd, nd) = FeatureSet::default_divisors();
    let features =
        Arc::new(FeatureSet::build(&graph, &circuit, &placement, &grid)?.scaled_fixed(&gd, &nd));
    let ops = lhnn::GraphOps::from_graph(&graph, &AblationSpec::full());

    // The one-shot CLI rides the same path a long-running service uses: a
    // registry entry, an engine (single worker — one design, one forward),
    // and a per-request threshold.
    let registry = Arc::new(ModelRegistry::new());
    registry.load_file("default", model_path)?;
    let engine = ServeEngine::new(
        Arc::clone(&registry),
        EngineConfig { workers: 1, compute_threads, ..EngineConfig::default() },
    );
    let handle = engine.handle();
    let request = PredictRequest::new("default", Arc::new(ops), Arc::clone(&features))
        .with_threshold(threshold);
    let reply = handle.predict(&request)?;
    let pred = &reply.prediction;
    let prob: Vec<f32> = (0..pred.cls_prob.rows()).map(|r| pred.cls_prob[(r, 0)]).collect();
    println!("design: {} on {}x{} g-cells", circuit.name, grid.nx(), grid.ny());
    println!(
        "predicted congestion rate: {:.2}% (threshold {threshold})",
        reply.congested_fraction * 100.0
    );
    println!("{}", ascii_map(&prob, grid.nx() as usize, grid.ny() as usize));
    if let Some(path) = args.opt("pgm") {
        write_pgm(&prob, grid.nx() as usize, grid.ny() as usize, Path::new(path))?;
        println!("probability map written to {path}");
    }
    if args.has("compare") {
        let tracks = args.num("tracks", 14.0f32);
        let rcfg = RouterConfig {
            capacity: CapacityConfig { h_tracks: tracks, v_tracks: tracks, ..Default::default() },
            ..Default::default()
        };
        let routed = route_circuit(&circuit, &placement, &grid, &[], &rcfg)?;
        let targets = Targets::from_labels(&routed.labels);
        let label = targets.congestion_channels(ChannelMode::Uni);
        let conf = Confusion::from_scores(&prob, label.as_slice(), threshold);
        println!(
            "vs global router: F1 {:.3}, accuracy {:.3} (router congestion rate {:.2}%)",
            conf.f1(),
            conf.accuracy(),
            routed.congestion_rate() * 100.0
        );
        // keep the sample around so the types stay exercised
        let _ =
            Sample { name: circuit.name.clone(), graph, features: (*features).clone(), targets };
    }
    engine.shutdown();
    Ok(())
}

/// Whether a bench command should record metrics (`--no-metrics` turns
/// the registry, stage tracing and flight recorder off entirely).
fn metrics_enabled(args: &Args) -> bool {
    !args.has("no-metrics")
}

/// Prints the per-stage latency breakdown and the flight recorder's
/// events from a metrics snapshot; with `--metrics [PREFIX]` also writes
/// the Prometheus text and JSON expositions to `PREFIX.prom` /
/// `PREFIX.json` (default prefix per command, e.g.
/// `results/METRICS_loop_bench`).
fn report_observability(
    snap: &Snapshot,
    events: &[FlightEvent],
    args: &Args,
    default_prefix: &str,
) -> CmdResult {
    println!("stage latency breakdown:");
    for (family, stages) in [("predict", &PREDICT_STAGES[..]), ("update", &UPDATE_STAGES[..])] {
        for stage in stages {
            let key = format!("lhnn_stage_us{{stage=\"{stage}\"}}");
            let Some(h) = snap.histogram(&key) else { continue };
            if h.count == 0 {
                println!("  {family:<7} {stage:<13} (no samples)");
            } else {
                println!(
                    "  {family:<7} {stage:<13} {:>7} samples  mean {:>9.1} us  \
                     p95 {:>8} us  p99 {:>8} us",
                    h.count,
                    h.mean(),
                    h.quantile(0.95),
                    h.quantile(0.99),
                );
            }
        }
    }
    println!(
        "  counters: {} requests ({} cache hits, {} computed), {} batches, \
         {} session updates, {} fallbacks",
        snap.counter("lhnn_requests_total"),
        snap.counter("lhnn_cache_hits_total"),
        snap.counter("lhnn_computed_total"),
        snap.counter("lhnn_batches_total"),
        snap.counter("lhnn_session_updates_total"),
        snap.counter("lhnn_fallbacks_total"),
    );
    if events.is_empty() {
        println!("flight recorder: no events");
    } else {
        println!("flight recorder ({} events, oldest first):", events.len());
        for e in events.iter().take(12) {
            println!(
                "  [+{:>8.3}s] {:<11} {}: {}",
                e.at_us as f64 / 1e6,
                e.kind,
                e.scope,
                e.detail
            );
        }
        if events.len() > 12 {
            println!("  ... {} more", events.len() - 12);
        }
    }
    if args.has("metrics") {
        let prefix = match args.get("metrics", "true").as_str() {
            "true" => default_prefix.to_string(),
            custom => custom.to_string(),
        };
        if let Some(parent) = Path::new(&prefix).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(format!("{prefix}.prom"), snap.to_prometheus())?;
        std::fs::write(format!("{prefix}.json"), snap.to_json())?;
        println!("wrote {prefix}.prom / {prefix}.json");
    }
    Ok(())
}

/// `lhnn stats --metrics FILE`: read back a Prometheus-style exposition
/// written by `--metrics` and print every series.
fn metrics_report(path: &str) -> CmdResult {
    let text = std::fs::read_to_string(path)?;
    let series = parse_prometheus(&text);
    if series.is_empty() {
        return Err(format!("{path} contains no readable metric series").into());
    }
    println!("{path}: {} series", series.len());
    for s in &series {
        let labels = if s.labels.is_empty() {
            String::new()
        } else {
            let body: Vec<String> = s.labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
            format!("{{{}}}", body.join(","))
        };
        println!("  {}{labels} = {}", s.name, s.value);
    }
    Ok(())
}

/// One prepared synthetic design for `serve-bench`.
fn bench_design(
    seed: u64,
    n_cells: usize,
    grid: u32,
) -> Result<(Arc<lhnn::GraphOps>, Arc<FeatureSet>), Box<dyn Error>> {
    let (ops, features) = lhnn_data::serving_inputs(seed, n_cells, grid)?;
    Ok((Arc::new(ops), Arc::new(features)))
}

/// Runs `requests` predictions over `designs` from `clients` threads
/// against a fresh engine with `workers` workers; returns (elapsed
/// seconds, stats line).
fn drive_engine(
    designs: &[(Arc<lhnn::GraphOps>, Arc<FeatureSet>)],
    arch: &str,
    workers: usize,
    clients: usize,
    requests: usize,
    cache_capacity: usize,
    threshold: f32,
    compute_threads: usize,
    metrics: bool,
) -> Result<(f64, lhnn_serve::ServeStats, Snapshot, Vec<FlightEvent>), Box<dyn Error>> {
    let registry = Arc::new(ModelRegistry::new());
    let engine = ServeEngine::new(
        Arc::clone(&registry),
        EngineConfig {
            workers,
            cache_capacity,
            compute_threads,
            metrics,
            ..EngineConfig::default()
        },
    );
    // Registered through the live engine so the inserts land in the
    // `lhnn_model_registrations_total{kind=...}` counter; the OTHER
    // architecture rides along in the same registry — one mixed-zoo
    // engine, per-kind worker scratch — and serves an untimed proof
    // request after the measured workload.
    registry.register_boxed("default", build_arch(arch, 0, 0)?)?;
    let alt = if arch == "hybridnet" { "lhnn" } else { "hybridnet" };
    registry.register_boxed(alt, build_arch(alt, 0, 1)?)?;
    let handle = engine.handle();
    let start = std::time::Instant::now();
    std::thread::scope(|scope| -> Result<(), Box<dyn Error>> {
        let mut joins = Vec::new();
        for client in 0..clients.max(1) {
            let handle = handle.clone();
            joins.push(scope.spawn(move || -> Result<(), String> {
                let mut i = client;
                while i < requests {
                    let (ops, features) = &designs[i % designs.len()];
                    let req = PredictRequest::new("default", Arc::clone(ops), Arc::clone(features))
                        .with_threshold(threshold);
                    handle.predict(&req).map_err(|e| e.to_string())?;
                    i += clients.max(1);
                }
                Ok(())
            }));
        }
        for j in joins {
            j.join().map_err(|_| "client thread panicked")??;
        }
        Ok(())
    })?;
    let elapsed = start.elapsed().as_secs_f64();
    let stats = handle.stats();
    // the second kind must serve from the same engine (untimed, after the
    // measured stats are captured)
    let (ops, features) = &designs[0];
    handle.predict(&PredictRequest::new(alt, Arc::clone(ops), Arc::clone(features)))?;
    let snapshot = handle.metrics_snapshot();
    let events = handle.flight_events();
    engine.shutdown();
    Ok((elapsed, stats, snapshot, events))
}

/// `lhnn loop-bench`: drive the placer's own iteration deltas against the
/// stateful session API and measure the incremental pipeline against
/// from-scratch rebuilds. With `--designs D` (D > 1) it switches to the
/// concurrent mode: D placement loops over a `--shards S` engine,
/// pipelined sessions vs serially-driven ones.
pub fn loop_bench(args: &Args) -> CmdResult {
    let designs_n = args.num("designs", 1usize).max(1);
    if designs_n > 1 {
        return loop_bench_concurrent(args, designs_n);
    }
    // defaults match `lhnn generate`'s canonical design size
    let cells = args.num("cells", 800usize).max(8);
    let grid_n = args.num("grid", 24u32).max(2);
    let seed = args.num("seed", 1u64);
    let rounds = args.num("rounds", 5usize).max(1);
    let move_pct = args.num("move-pct", 1.0f32).max(0.0);
    let threads = args.num("threads", 0usize);
    let arch = args.get("model", "lhnn");
    let json_path = args.get("json", "results/BENCH_incremental.json");
    if threads > 0 {
        neurograd::pool::configure_threads(threads);
    }

    // --- design + traced placement ---
    let synth_cfg = SynthConfig {
        name: "loopbench".into(),
        seed,
        n_cells: cells,
        grid_nx: grid_n,
        grid_ny: grid_n,
        ..SynthConfig::default()
    };
    let synth = synth_generate(&synth_cfg)?;
    let grid = synth_cfg.grid();
    let circuit = Arc::new(synth.circuit.clone());
    eprintln!("placing {cells} cells on {grid_n}x{grid_n} g-cells (traced)...");
    let (placed, trace) = GlobalPlacer::default().place_synth_traced(&synth, &grid)?;
    println!(
        "loop-bench: {cells} cells, {grid_n}x{grid_n} g-cells, seed {seed}, model {arch}; \
         trace has {} deltas (quadratic solve + spreading iterations)",
        trace.deltas.len()
    );

    // --- session replay: update + predict per placer iteration ---
    let registry = Arc::new(ModelRegistry::new());
    registry.register_boxed("default", build_arch(&arch, 0, 0)?)?;
    let engine = ServeEngine::new(
        Arc::clone(&registry),
        EngineConfig {
            workers: 1,
            compute_threads: threads,
            metrics: metrics_enabled(args),
            ..EngineConfig::default()
        },
    );
    let handle = engine.handle();
    let mut session = handle.open_session(
        SessionConfig::new("default"),
        Arc::clone(&circuit),
        trace.initial.clone(),
        grid.clone(),
    )?;
    let mut update_s = 0.0f64;
    let mut predict_s = 0.0f64;
    let mut cache_hits = 0usize;
    for delta in &trace.deltas {
        let t0 = std::time::Instant::now();
        session.update(delta)?;
        update_s += t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        let reply = session.predict()?;
        predict_s += t1.elapsed().as_secs_f64();
        if reply.cached {
            cache_hits += 1;
        }
    }
    // --- optional forced-crossing trace (the CI smoke passes
    // --structural-moves 2): yank a cell pinning a kept g-net across the
    // die and back, forcing the size filter in both directions, with a
    // prediction served across every crossing. Since stable G-net
    // columns, a crossing tombstones/revives columns *in place* — the CI
    // gate below asserts zero filter-crossing full rebuilds.
    let structural_moves = args.num("structural-moves", 0usize);
    if structural_moves > 0 {
        let cell_to_nets = circuit.cell_to_nets();
        let pinned = session.with_pipeline(|p| {
            (0..circuit.num_cells() as u32).map(CellId).find(|&id| {
                !circuit.cell(id).is_terminal()
                    && cell_to_nets[id.index()].iter().any(|&n| p.graph().net_column(n).is_some())
            })
        });
        let Some(yanked) = pinned else {
            return Err("no movable cell pins a kept g-net; cannot force a structural \
                        crossing"
                .into());
        };
        let die = circuit.die;
        let home = session.with_pipeline(|p| p.placement().position(yanked));
        let far = die.clamp(Point::new(
            if home.x < (die.lx + die.ux) * 0.5 { die.ux - 0.01 } else { die.lx + 0.01 },
            if home.y < (die.ly + die.uy) * 0.5 { die.uy - 0.01 } else { die.ly + 0.01 },
        ));
        let crossings_before = session.stats().crossings_patched;
        for _ in 0..structural_moves {
            // out and back: the second leg restores the placement, so the
            // replay parity check below still compares equal states
            for target in [far, home] {
                session.update(&PlacementDelta::single(yanked, target))?;
                if session.predict()?.cached {
                    cache_hits += 1;
                }
            }
        }
        let crossings = session.stats().crossings_patched - crossings_before;
        if crossings == 0 {
            return Err(format!(
                "structural trace forced no crossing: cell {} never crossed the g-net \
                 size filter",
                yanked.0
            )
            .into());
        }
        println!(
            "structural trace: {crossings} size-filter crossings patched in place over \
             {} yanks, a prediction served across each",
            structural_moves * 2
        );
    }

    let stats = session.stats();
    let inc_stats = session.incremental_stats();
    let fallback_fraction = stats.full_rebuilds as f64 / (stats.updates.max(1)) as f64;
    let n = trace.deltas.len().max(1) as f64;
    println!(
        "session replay: {} updates ({} incremental, {} full rebuilds, {} noop), \
         avg update {:.3} ms, avg predict {:.3} ms, {cache_hits} cache hits",
        stats.updates,
        stats.incremental,
        stats.full_rebuilds,
        stats.noops,
        update_s / n * 1e3,
        predict_s / n * 1e3,
    );
    println!(
        "  predict paths: {} full, {} spliced, {} reused from the activation cache \
         ({} invalidations); fallback fraction {fallback_fraction:.4}",
        inc_stats.full_forwards,
        inc_stats.spliced_forwards,
        inc_stats.reused,
        inc_stats.invalidations,
    );
    // CI greps these cause-breakdown lines: filter crossings must patch
    // in place (tombstone/append), never trigger a full rebuild.
    println!(
        "  rebuild causes: {} filter_crossing, {} compaction, {} poisoned; \
         {} crossings patched in place",
        stats.rebuilds_filter_crossing,
        stats.rebuilds_compaction,
        stats.rebuilds_poisoned,
        stats.crossings_patched,
    );
    println!(
        "  cache invalidation causes: {} filter_crossing, {} compaction, {} dim_change, \
         {} poisoned",
        inc_stats.invalidations_filter_crossing,
        inc_stats.invalidations_compaction,
        inc_stats.invalidations_dim_change,
        inc_stats.invalidations_poisoned,
    );
    if stats.rebuilds_filter_crossing > 0 {
        return Err(format!(
            "{} size-filter crossings fell back to a full rebuild; the stable column \
             space should have tombstone/append-patched them",
            stats.rebuilds_filter_crossing
        )
        .into());
    }

    // --- bitwise parity: the replayed session vs a from-scratch build ---
    // The session's column layout is order-dependent (tombstoned columns
    // keep their slot, appended columns land at the end), so the reference
    // build must be prescribed the session's own layout; a canonical
    // `LhGraph::build` only matches right after a compaction.
    let session_fps = session.fingerprints()?;
    let columns = session.with_pipeline(|p| p.graph().kept_nets().to_vec());
    let fresh_graph = LhGraph::build_with_columns(
        &circuit,
        &placed.placement,
        &grid,
        &LhGraphConfig::default(),
        &columns,
    )?;
    let fresh_features = FeatureSet::build(&fresh_graph, &circuit, &placed.placement, &grid)?;
    let fresh_ops = GraphOps::from_graph(&fresh_graph, &AblationSpec::full());
    let fresh_fps = (fresh_ops.fingerprint(), fresh_features.fingerprint());
    if session_fps != fresh_fps {
        return Err(format!(
            "bitwise parity FAILED: session {session_fps:?} vs full rebuild {fresh_fps:?}"
        )
        .into());
    }
    println!(
        "bitwise parity after replay: OK (ops fp {:016x}, features fp {:016x})",
        session_fps.0, session_fps.1
    );

    // --- micro-bench: k-cell move, incremental vs full rebuild ---
    let k = ((cells as f32 * move_pct / 100.0).ceil() as usize).clamp(1, cells);
    let mut pipeline =
        LatticePipeline::for_serving(Arc::clone(&circuit), placed.placement.clone(), grid.clone())?;
    let die = circuit.die;
    // Steady-state moves: restrict to movable cells whose nets cannot
    // cross the G-net size filter under a same-direction sub-g-cell nudge
    // (each span grows by at most one g-cell per axis), so every measured
    // round exercises the incremental path rather than the structural
    // fallback a filter crossing legitimately takes.
    let max_area = LhGraphConfig::default().max_gnet_area(grid.num_gcells());
    let cell_to_nets = circuit.cell_to_nets();
    let eligible: Vec<CellId> = (0..cells)
        .map(|i| CellId(i as u32))
        .filter(|&id| {
            !circuit.cell(id).is_terminal()
                && !cell_to_nets[id.index()].is_empty()
                && cell_to_nets[id.index()].iter().all(|&n| {
                    pipeline.graph().net_column(n).is_some_and(|j| {
                        let (lo, hi) = pipeline.graph().span_of(j);
                        let (w, h) = ((hi.gx - lo.gx + 1) as usize, (hi.gy - lo.gy + 1) as usize);
                        (w + 1) * (h + 1) <= max_area
                    })
                })
        })
        .collect();
    if eligible.is_empty() {
        return Err(format!(
            "no steady-state movable cells at {grid_n}x{grid_n} (every cell touches a net \
             near the {max_area}-g-cell size filter); raise --grid or --cells"
        )
        .into());
    }
    let k = k.min(eligible.len());
    let mut records = Vec::new();
    // The replay row carries the pipeline's fallback accounting alongside
    // the timings — BENCH_incremental.json previously omitted
    // `full_rebuilds` entirely, hiding how often the structural fallback
    // (not the incremental path) produced the measured numbers.
    records.push(
        BenchRecord::labeled(
            format!("trace_replay_{cells}c_{grid_n}x{grid_n}"),
            "avg session update",
            update_s / n * 1e3,
            "avg session predict",
            predict_s / n * 1e3,
        )
        .with_extra("updates", stats.updates as f64)
        .with_extra("full_rebuilds", stats.full_rebuilds as f64)
        .with_extra("fallback_fraction", fallback_fraction)
        .with_extra("rebuilds_filter_crossing", stats.rebuilds_filter_crossing as f64)
        .with_extra("rebuilds_compaction", stats.rebuilds_compaction as f64)
        .with_extra("rebuilds_poisoned", stats.rebuilds_poisoned as f64)
        .with_extra("crossings_patched", stats.crossings_patched as f64)
        .with_extra("full_forwards", inc_stats.full_forwards as f64)
        .with_extra("spliced_forwards", inc_stats.spliced_forwards as f64)
        .with_extra("reused_predictions", inc_stats.reused as f64),
    );
    for (label, k) in [(format!("update_k{k}_{move_pct}pct"), k), ("update_k1".to_string(), 1)] {
        // Restart from the placement the eligibility filter was computed
        // on: the alternating ±0.75-g-cell nudges stay within its
        // one-g-cell span budget, but drift accumulated across labels
        // would not.
        pipeline = LatticePipeline::for_serving(
            Arc::clone(&circuit),
            placed.placement.clone(),
            grid.clone(),
        )?;
        let mut incr_s = 0.0f64;
        let mut full_s = 0.0f64;
        let mut dirty_rows = 0usize;
        // round 0 is an untimed warmup (allocator, caches, page-in)
        for round in 0..=rounds {
            let timed = round > 0;
            // move k spread-out eligible cells ~0.75 g-cells diagonally,
            // alternating direction per round so the state keeps changing
            let sign = if round % 2 == 0 { 1.0 } else { -1.0 };
            let mut delta = PlacementDelta::new();
            let stride = (eligible.len() / k).max(1);
            for m in 0..k {
                let id = eligible[(m * stride) % eligible.len()];
                let p = pipeline.placement().position(id);
                delta.push(
                    id,
                    die.clamp(Point::new(
                        p.x + sign * 0.75 * grid.gcell_width(),
                        p.y + sign * 0.75 * grid.gcell_height(),
                    )),
                );
            }
            let t0 = std::time::Instant::now();
            let update = pipeline.apply(&delta)?;
            let incr_fps = pipeline.fingerprints()?;
            if timed {
                incr_s += t0.elapsed().as_secs_f64();
                // The record claims to measure the incremental path: a
                // Noop (nothing crossed a boundary) or FullRebuild
                // (eligibility missed a filter crossing) would silently
                // report a speedup for the wrong code path.
                let lhnn::PipelineUpdate::Incremental { ref dirty_gcells, .. } = update else {
                    return Err(format!(
                        "micro-bench round {round} did not take the incremental path \
                         ({update:?}); the measured speedup would be meaningless"
                    )
                    .into());
                };
                dirty_rows += dirty_gcells.len();
            }
            // The batch baseline: rebuild graph + features + operators and
            // re-fingerprint from scratch at the same placement (exactly
            // what every query paid before sessions existed).
            let t1 = std::time::Instant::now();
            pipeline.rebuild()?;
            let full_fps = pipeline.fingerprints()?;
            if timed {
                full_s += t1.elapsed().as_secs_f64();
            }
            if incr_fps != full_fps {
                return Err(format!(
                    "bitwise parity FAILED in micro-bench round {round}: \
                     incremental {incr_fps:?} vs full {full_fps:?}"
                )
                .into());
            }
        }
        let record = BenchRecord::labeled(
            format!("{label}_{cells}c_{grid_n}x{grid_n}"),
            "full rebuild",
            full_s / rounds as f64 * 1e3,
            "incremental update",
            incr_s / rounds as f64 * 1e3,
        )
        .with_extra("dirty_gcells_avg", dirty_rows as f64 / rounds as f64);
        println!(
            "micro-bench {k:>4}-cell move: incremental {:.3} ms vs full rebuild {:.3} ms \
             -> {:.1}x speedup (avg of {rounds} rounds, bitwise-verified)",
            record.candidate_ms,
            record.baseline_ms,
            record.speedup()
        );
        records.push(record);
    }

    // --- micro-bench: bounded-radius splice vs full forward ---
    // Same steady-state k-cell moves, but timing the model forward itself:
    // the spliced predict recomputes only the ≤5-hop halo of the dirty
    // rows and splices it into the cached activations, the baseline
    // recomputes every G-cell (what every predict paid before the
    // activation cache existed).
    let model = build_arch(&arch, 0, 0)?;
    let version = model.weights_fingerprint();
    let mut scratch = model.new_scratch();
    for (label, k) in [(format!("predict_k{k}_{move_pct}pct"), k), ("predict_k1".to_string(), 1)] {
        // Same reset as the update micro-bench: keep the moves inside the
        // eligibility filter's span budget.
        pipeline = LatticePipeline::for_serving(
            Arc::clone(&circuit),
            placed.placement.clone(),
            grid.clone(),
        )?;
        let incr = IncrementalForward::new();
        // prime the activation cache with one untimed full forward
        {
            let (ops, feats) = (pipeline.ops(), pipeline.features());
            let (_, outcome) = incr.predict(model.as_ref(), version, &ops, &feats, incr.seq());
            if outcome != SpliceOutcome::Full {
                return Err(
                    format!("priming forward did not take the full path ({outcome:?})").into()
                );
            }
        }
        let mut splice_s = 0.0f64;
        let mut full_fwd_s = 0.0f64;
        let mut halo_rows = 0usize;
        for round in 0..=rounds {
            let timed = round > 0;
            let sign = if round % 2 == 0 { 1.0 } else { -1.0 };
            let mut delta = PlacementDelta::new();
            let stride = (eligible.len() / k).max(1);
            for m in 0..k {
                let id = eligible[(m * stride) % eligible.len()];
                let p = pipeline.placement().position(id);
                delta.push(
                    id,
                    die.clamp(Point::new(
                        p.x + sign * 0.75 * grid.gcell_width(),
                        p.y + sign * 0.75 * grid.gcell_height(),
                    )),
                );
            }
            let update = pipeline.apply(&delta)?;
            let lhnn::PipelineUpdate::Incremental { dirty_nets, dirty_gcells } = update else {
                return Err(format!(
                    "predict micro-bench round {round} did not take the incremental \
                     path ({update:?}); the measured speedup would be meaningless"
                )
                .into());
            };
            incr.note_incremental(&ForwardDirty::new(dirty_gcells, dirty_nets));
            let (ops, feats) = (pipeline.ops(), pipeline.features());
            let t0 = std::time::Instant::now();
            let (spliced, outcome) =
                incr.predict(model.as_ref(), version, &ops, &feats, incr.seq());
            if timed {
                splice_s += t0.elapsed().as_secs_f64();
                let SpliceOutcome::Spliced { gcell_rows, .. } = outcome else {
                    return Err(format!(
                        "predict micro-bench round {round} did not splice ({outcome:?})"
                    )
                    .into());
                };
                halo_rows += gcell_rows;
            }
            let t1 = std::time::Instant::now();
            let full = model.predict_with(&ops, &feats, scratch.as_mut());
            if timed {
                full_fwd_s += t1.elapsed().as_secs_f64();
            }
            if !(spliced.cls_prob.approx_eq(&full.cls_prob, 0.0)
                && spliced.reg.approx_eq(&full.reg, 0.0))
            {
                return Err(format!(
                    "bitwise parity FAILED in predict micro-bench round {round}: \
                     spliced forward diverged from the full forward"
                )
                .into());
            }
        }
        let halo_avg = halo_rows as f64 / rounds as f64;
        let record = BenchRecord::labeled(
            format!("{label}_{cells}c_{grid_n}x{grid_n}"),
            "full forward",
            full_fwd_s / rounds as f64 * 1e3,
            "bounded-radius splice",
            splice_s / rounds as f64 * 1e3,
        )
        .with_extra("halo_gcells_avg", halo_avg)
        .with_extra("total_gcells", grid.num_gcells() as f64);
        println!(
            "predict micro-bench {k:>4}-cell move: splice {:.3} ms ({halo_avg:.0} of {} \
             g-cell rows) vs full forward {:.3} ms -> {:.1}x speedup \
             (avg of {rounds} rounds, bitwise-verified)",
            record.candidate_ms,
            grid.num_gcells(),
            record.baseline_ms,
            record.speedup()
        );
        records.push(record);
    }

    // --- micro-bench: size-filter crossing, tombstone patch vs full rebuild ---
    // A cell pinning a kept g-net is yanked to the far die corner and back;
    // each leg crosses the size filter. The candidate is the tombstone /
    // append patch the stable column space applies now; the baseline is
    // the from-scratch build the same crossing forced before. The baseline
    // must be non-mutating (`build_with_columns` at the pipeline's own
    // layout) — `pipeline.rebuild()` would compact, renumber columns, and
    // break the out-and-back bitwise revival the rounds rely on.
    {
        pipeline = LatticePipeline::for_serving(
            Arc::clone(&circuit),
            placed.placement.clone(),
            grid.clone(),
        )?;
        let cell_to_nets = circuit.cell_to_nets();
        let pinned = (0..circuit.num_cells() as u32).map(CellId).find(|&id| {
            !circuit.cell(id).is_terminal()
                && cell_to_nets[id.index()]
                    .iter()
                    .any(|&n| pipeline.graph().net_column(n).is_some())
        });
        let Some(yanked) = pinned else {
            return Err("no movable cell pins a kept g-net; cannot bench a filter \
                        crossing"
                .into());
        };
        let home = pipeline.placement().position(yanked);
        let far = die.clamp(Point::new(
            if home.x < (die.lx + die.ux) * 0.5 { die.ux - 0.01 } else { die.lx + 0.01 },
            if home.y < (die.ly + die.uy) * 0.5 { die.uy - 0.01 } else { die.ly + 0.01 },
        ));
        let mut patch_s = 0.0f64;
        let mut rebuild_s = 0.0f64;
        let crossings_before = pipeline.stats().crossings_patched;
        for round in 0..=rounds {
            let timed = round > 0;
            // out and back: each leg crosses the filter, and the return leg
            // restores the pre-yank state bitwise (tombstone revival)
            for target in [far, home] {
                let t0 = std::time::Instant::now();
                let update = pipeline.apply(&PlacementDelta::single(yanked, target))?;
                let incr_fps = pipeline.fingerprints()?;
                if timed {
                    patch_s += t0.elapsed().as_secs_f64();
                }
                if !matches!(update, lhnn::PipelineUpdate::Incremental { .. }) {
                    return Err(format!(
                        "crossing micro-bench round {round} fell back to a full rebuild \
                         ({update:?}); the tombstone patch should have absorbed it"
                    )
                    .into());
                }
                let t1 = std::time::Instant::now();
                let g = LhGraph::build_with_columns(
                    &circuit,
                    pipeline.placement(),
                    &grid,
                    &LhGraphConfig::default(),
                    pipeline.graph().kept_nets(),
                )?;
                let f = FeatureSet::build(&g, &circuit, pipeline.placement(), &grid)?;
                let o = GraphOps::from_graph(&g, &AblationSpec::full());
                let full_fps = (o.fingerprint(), f.fingerprint());
                if timed {
                    rebuild_s += t1.elapsed().as_secs_f64();
                }
                if incr_fps != full_fps {
                    return Err(format!(
                        "bitwise parity FAILED in crossing micro-bench round {round}: \
                         incremental {incr_fps:?} vs full {full_fps:?}"
                    )
                    .into());
                }
            }
        }
        let crossings = pipeline.stats().crossings_patched - crossings_before;
        if crossings == 0 {
            return Err("crossing micro-bench never crossed the size filter; the yank \
                        target did not change the pinned net's span class"
                .into());
        }
        let legs = (rounds * 2) as f64;
        let record = BenchRecord::labeled(
            format!("crossing_update_{cells}c_{grid_n}x{grid_n}"),
            "full rebuild",
            rebuild_s / legs * 1e3,
            "tombstone patch",
            patch_s / legs * 1e3,
        )
        .with_extra("crossings", crossings as f64)
        .with_extra("full_rebuilds", pipeline.stats().full_rebuilds as f64);
        println!(
            "crossing micro-bench: tombstone patch {:.3} ms vs full rebuild {:.3} ms \
             -> {:.1}x speedup across {crossings} size-filter crossings \
             (avg of {rounds} out-and-back rounds, bitwise-verified)",
            record.candidate_ms,
            record.baseline_ms,
            record.speedup()
        );
        records.push(record);
    }

    write_bench_json(Path::new(&json_path), "incremental", threads.max(1), &records)?;
    println!("wrote {json_path} (baseline = full rebuild, candidate = incremental update)");
    if handle.metrics_enabled() {
        report_observability(
            &handle.metrics_snapshot(),
            &handle.flight_events(),
            args,
            "results/METRICS_loop_bench",
        )?;
    }
    engine.shutdown();
    Ok(())
}

/// One design prepared for the concurrent loop-bench: a traced placement
/// whose deltas replay the placer's own iterations.
struct LoopDesign {
    name: String,
    circuit: Arc<vlsi_netlist::Circuit>,
    grid: GcellGrid,
    initial: Placement,
    final_placement: Placement,
    deltas: Vec<PlacementDelta>,
}

/// The concurrent mode of `lhnn loop-bench`: D designs, each replaying
/// its own placer trace through a session, comparing serially-driven
/// sessions on a single-shard engine against concurrent pipelined
/// sessions on an `--shards S` engine. Writes `BENCH_serve_shard.json`.
fn loop_bench_concurrent(args: &Args, designs_n: usize) -> CmdResult {
    let shards = args.num("shards", 2usize).max(1);
    let workers = args.num("workers", shards).max(1);
    let cells = args.num("cells", 800usize).max(8);
    let grid_n = args.num("grid", 24u32).max(2);
    let seed = args.num("seed", 1u64);
    let threads = args.num("threads", 0usize);
    let arch = args.get("model", "lhnn");
    let json_path = args.get("json", "results/BENCH_serve_shard.json");
    if threads > 0 {
        neurograd::pool::configure_threads(threads);
    }

    eprintln!(
        "preparing {designs_n} designs ({cells} cells, {grid_n}x{grid_n} g-cells) with traced \
         placements..."
    );
    let designs: Result<Vec<LoopDesign>, Box<dyn Error>> = (0..designs_n)
        .map(|d| {
            let synth_cfg = SynthConfig {
                name: format!("loopbench-{d}"),
                seed: seed + d as u64,
                n_cells: cells,
                grid_nx: grid_n,
                grid_ny: grid_n,
                ..SynthConfig::default()
            };
            let synth = synth_generate(&synth_cfg)?;
            let grid = synth_cfg.grid();
            let (placed, trace) = GlobalPlacer::default().place_synth_traced(&synth, &grid)?;
            Ok(LoopDesign {
                name: synth_cfg.name,
                circuit: Arc::new(synth.circuit),
                grid,
                initial: trace.initial.clone(),
                final_placement: placed.placement,
                deltas: trace.deltas,
            })
        })
        .collect();
    let designs = designs?;
    let total_deltas: usize = designs.iter().map(|d| d.deltas.len()).sum();
    let total_ops = 2 * total_deltas; // every delta is one update + one predict
    println!(
        "workload: {designs_n} designs x ~{} placer deltas = {total_ops} session ops \
         (update + predict per iteration)",
        total_deltas / designs_n.max(1)
    );
    println!(
        "host parallelism: {} (concurrent mode runs {designs_n} clients + {workers} shard \
         workers; expect shard scaling only when cores exceed the serial baseline's two \
         threads)",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );

    let registry = Arc::new(ModelRegistry::new());
    registry.register_boxed("default", build_arch(&arch, 0, 0)?)?;

    // --- baseline: serially-driven sessions, single shard, one worker ---
    let serial_engine = ServeEngine::new(
        Arc::clone(&registry),
        EngineConfig {
            workers: 1,
            shards: 1,
            compute_threads: threads,
            metrics: metrics_enabled(args),
            ..EngineConfig::default()
        },
    );
    let serial_handle = serial_engine.handle();
    let mut serial_sessions: Vec<_> = designs
        .iter()
        .map(|d| {
            serial_handle.open_session(
                SessionConfig::new("default").with_design(&d.name),
                Arc::clone(&d.circuit),
                d.initial.clone(),
                d.grid.clone(),
            )
        })
        .collect::<Result<_, _>>()?;
    let t0 = std::time::Instant::now();
    let mut serial_last = Vec::new();
    for (design, session) in designs.iter().zip(serial_sessions.iter_mut()) {
        let mut last = None;
        for delta in &design.deltas {
            session.update(delta)?;
            last = Some(session.predict()?.prediction);
        }
        serial_last.push(last.expect("trace has deltas"));
    }
    let serial_s = t0.elapsed().as_secs_f64();
    let serial_stats = serial_handle.stats();
    serial_engine.shutdown();
    let serial_rps = total_ops as f64 / serial_s.max(1e-9);
    println!(
        "  serially-driven sessions  (1 shard, 1 worker):   {serial_s:>7.2}s  {serial_rps:>8.1} ops/s  \
         ({} forwards)",
        serial_stats.computed
    );

    // --- concurrent pipelined sessions over the sharded engine ---
    let engine = ServeEngine::new(
        Arc::clone(&registry),
        EngineConfig {
            workers,
            shards,
            compute_threads: threads,
            metrics: metrics_enabled(args),
            ..EngineConfig::default()
        },
    );
    let handle = engine.handle();
    let conc_sessions: Vec<_> = designs
        .iter()
        .map(|d| {
            handle.open_session(
                SessionConfig::new("default").with_design(&d.name),
                Arc::clone(&d.circuit),
                d.initial.clone(),
                d.grid.clone(),
            )
        })
        .collect::<Result<_, _>>()?;
    let t1 = std::time::Instant::now();
    type ConcResult = Result<(Arc<lhnn::Prediction>, (u64, u64), Vec<vlsi_netlist::NetId>), String>;
    let results: Vec<ConcResult> = std::thread::scope(|scope| {
        let joins: Vec<_> = designs
            .iter()
            .zip(conc_sessions)
            .map(|(design, mut session)| {
                scope.spawn(move || -> ConcResult {
                    let mut last = None;
                    for delta in &design.deltas {
                        // pipelined: fire the update, let the shard
                        // apply it; predict drains in order
                        drop(session.submit_update(delta));
                        last = Some(session.predict().map_err(|e| e.to_string())?.prediction);
                    }
                    // The session's column layout is order-dependent
                    // (tombstones keep their slot, appends land at the
                    // end), so the parity rebuild below must be
                    // prescribed this layout — a canonical build only
                    // matches right after a compaction.
                    let columns = session.with_pipeline(|p| p.graph().kept_nets().to_vec());
                    Ok((
                        last.expect("trace has deltas"),
                        session.fingerprints().map_err(|e| e.to_string())?,
                        columns,
                    ))
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().expect("client thread")).collect()
    });
    let conc_s = t1.elapsed().as_secs_f64();
    let conc_rps = total_ops as f64 / conc_s.max(1e-9);
    println!(
        "  pipelined sessions ({shards} shards, {workers} workers):   {conc_s:>7.2}s  \
         {conc_rps:>8.1} ops/s  -> {:.2}x vs serial",
        conc_rps / serial_rps.max(1e-9)
    );

    // --- bitwise parity: every concurrent session vs serial replay and a
    // from-scratch rebuild at the final placement (prescribed the
    // session's own column layout, exactly like the single-design mode:
    // size-filter crossings tombstone/append columns in place, so the
    // replayed layout legitimately differs from a canonical build) ---
    for (design, (result, serial_pred)) in designs.iter().zip(results.iter().zip(&serial_last)) {
        let (conc_pred, conc_fps, columns) = result.as_ref().map_err(|e| e.clone())?;
        let fresh_graph = LhGraph::build_with_columns(
            &design.circuit,
            &design.final_placement,
            &design.grid,
            &LhGraphConfig::default(),
            columns,
        )?;
        let fresh_features = FeatureSet::build(
            &fresh_graph,
            &design.circuit,
            &design.final_placement,
            &design.grid,
        )?;
        let fresh_ops = GraphOps::from_graph(&fresh_graph, &AblationSpec::full());
        let fresh_fps = (fresh_ops.fingerprint(), fresh_features.fingerprint());
        if *conc_fps != fresh_fps {
            return Err(format!(
                "bitwise parity FAILED for {}: concurrent session {conc_fps:?} vs fresh \
                 rebuild {fresh_fps:?}",
                design.name
            )
            .into());
        }
        if !conc_pred.cls_prob.approx_eq(&serial_pred.cls_prob, 0.0)
            || !conc_pred.reg.approx_eq(&serial_pred.reg, 0.0)
        {
            return Err(format!(
                "final prediction of {} diverged between pipelined and serial sessions",
                design.name
            )
            .into());
        }
    }
    println!("bitwise parity: OK ({designs_n} designs, pipelined == serial == fresh rebuild)");

    let stats = handle.stats();
    println!("engine stats: {stats}");
    for s in &stats.per_shard {
        println!(
            "  shard {}: {} workers, {} requests, {} forwards, {} cache hits, {} worker-applied \
             updates, p99 {:.2} ms",
            s.shard,
            s.workers,
            s.requests,
            s.computed,
            s.cache_hits,
            s.session_updates,
            s.p99_us as f64 / 1000.0
        );
    }
    if handle.metrics_enabled() {
        report_observability(
            &handle.metrics_snapshot(),
            &handle.flight_events(),
            args,
            "results/METRICS_loop_bench",
        )?;
    }
    engine.shutdown();

    // --- cross-design stateless burst: same-shape placement snapshots
    // submitted together, so shard micro-batches fuse them into
    // block-diagonal forwards ---
    let snaps_per_design = 3usize;
    let mut snapshots: Vec<(Arc<lhnn::GraphOps>, Arc<FeatureSet>)> = Vec::new();
    for design in &designs {
        let mut pipe = LatticePipeline::for_serving(
            Arc::clone(&design.circuit),
            design.initial.clone(),
            design.grid.clone(),
        )?;
        let step = (design.deltas.len() / snaps_per_design).max(1);
        let mut taken = 0;
        for (i, delta) in design.deltas.iter().enumerate() {
            pipe.apply(delta)?;
            if (i + 1) % step == 0 && taken < snaps_per_design {
                snapshots.push((pipe.ops(), pipe.features()));
                taken += 1;
            }
        }
    }
    let burst_reqs: Vec<PredictRequest> = snapshots
        .iter()
        .map(|(ops, feats)| PredictRequest::new("default", Arc::clone(ops), Arc::clone(feats)))
        .collect();
    let burst_engine = |workers: usize| {
        ServeEngine::new(
            Arc::clone(&registry),
            EngineConfig {
                workers,
                shards,
                compute_threads: threads,
                metrics: metrics_enabled(args),
                ..EngineConfig::default()
            },
        )
    };
    // baseline: one request at a time — every snapshot is its own dispatch
    let serial_burst = burst_engine(workers);
    let sb_handle = serial_burst.handle();
    let t2 = std::time::Instant::now();
    let serial_replies: Vec<_> =
        burst_reqs.iter().map(|r| sb_handle.predict(r)).collect::<Result<_, _>>()?;
    let burst_serial_s = t2.elapsed().as_secs_f64();
    serial_burst.shutdown();
    // candidate: the whole burst enqueued before collection — same-shape
    // misses sharing a micro-batch run as one block-diagonal forward
    let batched_burst = burst_engine(workers);
    let bb_handle = batched_burst.handle();
    let t3 = std::time::Instant::now();
    let batched_replies: Vec<_> =
        bb_handle.predict_batch(&burst_reqs).into_iter().collect::<Result<_, _>>()?;
    let burst_batched_s = t3.elapsed().as_secs_f64();
    let burst_stats = bb_handle.stats();
    batched_burst.shutdown();
    // parity: batched replies == serial replies == direct model forwards
    let direct_model = build_arch(&arch, 0, 0)?;
    for (i, ((ops, feats), (serial, batched))) in
        snapshots.iter().zip(serial_replies.iter().zip(&batched_replies)).enumerate()
    {
        let direct = direct_model.predict(ops, feats);
        for (label, reply) in [("serial", serial), ("batched", batched)] {
            if !direct.cls_prob.approx_eq(&reply.prediction.cls_prob, 0.0)
                || !direct.reg.approx_eq(&reply.prediction.reg, 0.0)
            {
                return Err(format!(
                    "cross-design batching parity FAILED: {label} snapshot {i} diverged from \
                     the direct forward"
                )
                .into());
            }
        }
    }
    println!(
        "cross-design batching parity: OK ({} snapshots, batched == serial == direct bitwise; \
         {} block-diagonal forwards covered {} requests)",
        snapshots.len(),
        burst_stats.batched_forwards,
        burst_stats.batched_forward_jobs,
    );
    println!(
        "  stateless burst: one-at-a-time {:.2}ms -> batched {:.2}ms ({} dispatches for {} \
         forwards)",
        burst_serial_s * 1e3,
        burst_batched_s * 1e3,
        burst_stats.computed - burst_stats.batched_forward_jobs + burst_stats.batched_forwards,
        burst_stats.computed,
    );

    // Tail latency rides along in the bench record: the aggregate
    // percentiles (recency-weighted across shards) plus each shard's own
    // p99, so a regression on one hot shard is visible even when the
    // aggregate hides it.
    let mut record = BenchRecord::labeled(
        format!("serve_shard_{designs_n}d_{shards}s_{cells}c_{grid_n}x{grid_n}"),
        "serial sessions",
        serial_s * 1e3,
        format!("pipelined x{designs_n} over {shards} shards"),
        conc_s * 1e3,
    )
    .with_extra("p50_us", stats.p50_us as f64)
    .with_extra("p95_us", stats.p95_us as f64)
    .with_extra("p99_us", stats.p99_us as f64)
    .with_extra("burst_serial_ms", burst_serial_s * 1e3)
    .with_extra("burst_batched_ms", burst_batched_s * 1e3)
    .with_extra("batched_forwards", burst_stats.batched_forwards as f64)
    .with_extra("batched_forward_jobs", burst_stats.batched_forward_jobs as f64);
    for s in &stats.per_shard {
        record = record.with_extra(format!("shard{}_p99_us", s.shard), s.p99_us as f64);
    }
    write_bench_json(Path::new(&json_path), "serve_shard", threads.max(1), &[record])?;
    println!(
        "wrote {json_path} (baseline = serially-driven sessions, candidate = concurrent pipelined)"
    );
    Ok(())
}

/// `lhnn serve-bench`: drive synthetic designs through the inference
/// engine and report latency, throughput and cache behaviour.
pub fn serve_bench(args: &Args) -> CmdResult {
    let designs_n = args.num("designs", 4usize).max(1);
    let requests = args.num("requests", 64usize).max(1);
    let workers = args.num("workers", 4usize).max(1);
    let clients = args.num("clients", workers.max(2)).max(1);
    let cells = args.num("cells", 200usize);
    let grid = args.num("grid", 12u32);
    let cache = args.num("cache", 128usize);
    let threshold = args.num("threshold", 0.5f32);
    let compute_threads = args.num("threads", 0usize);
    let arch = args.get("model", "lhnn");
    if compute_threads > 0 {
        neurograd::pool::configure_threads(compute_threads);
    }

    eprintln!("preparing {designs_n} synthetic designs ({cells} cells, {grid}x{grid} g-cells)...");
    let designs: Result<Vec<_>, _> =
        (0..designs_n as u64).map(|s| bench_design(s, cells, grid)).collect();
    let designs = designs?;

    println!(
        "workload: {requests} requests over {designs_n} designs ({arch} model), \
         {clients} client threads, cache {cache}"
    );
    println!(
        "compute pool: {} intra-op threads, shared by all {workers} workers \
         (host parallelism {}; kernels are bitwise thread-count-invariant)",
        neurograd::pool::current_threads(),
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    println!("{}", neurograd::simd::isa_report());
    let mut baseline_rps = 0.0;
    for (label, w, cache_cap) in [
        ("1 worker, cold cache", 1, 0),
        (&format!("{workers} workers, cold cache")[..], workers, 0),
    ] {
        let (elapsed, stats, _, _) = drive_engine(
            &designs,
            &arch,
            w,
            clients,
            requests,
            cache_cap,
            threshold,
            compute_threads,
            metrics_enabled(args),
        )?;
        let rps = requests as f64 / elapsed.max(1e-9);
        if w == 1 {
            baseline_rps = rps;
        }
        println!(
            "  {label:<24} {elapsed:>7.2}s  {rps:>8.1} req/s  p50 {:>7.2} ms  p95 {:>7.2} ms  p99 {:>7.2} ms",
            stats.p50_us as f64 / 1000.0,
            stats.p95_us as f64 / 1000.0,
            stats.p99_us as f64 / 1000.0,
        );
        if w != 1 && baseline_rps > 0.0 {
            println!("  parallel speedup at {w} workers: {:.2}x", rps / baseline_rps);
        }
    }
    // Warm-cache pass: every design repeats, so hits dominate.
    let (elapsed, stats, snapshot, events) = drive_engine(
        &designs,
        &arch,
        workers,
        clients,
        requests,
        cache,
        threshold,
        compute_threads,
        metrics_enabled(args),
    )?;
    println!(
        "  {:<24} {elapsed:>7.2}s  {:>8.1} req/s  cache hit rate {:.1}% ({} of {} served from cache)",
        format!("{workers} workers, LRU cache"),
        requests as f64 / elapsed.max(1e-9),
        stats.cache_hit_rate * 100.0,
        stats.cache_hits,
        stats.requests,
    );
    println!("engine stats: {stats}");
    if metrics_enabled(args) {
        report_observability(&snapshot, &events, args, "results/METRICS_serve_bench")?;
    }
    Ok(())
}
