//! Implementations of the `lhnn` subcommands.

use std::error::Error;
use std::fs::File;
use std::path::Path;

use lh_graph::{ChannelMode, FeatureSet, LhGraph, LhGraphConfig, Targets};
use lhnn::{evaluate, train as train_model, AblationSpec, Lhnn, LhnnConfig, Sample, TrainConfig};
use lhnn_data::{ascii_map, write_pgm, DatasetConfig, PreparedDataset};
use neurograd::Confusion;
use vlsi_netlist::synth::{generate as synth_generate, SynthConfig};
use vlsi_netlist::{bookshelf, netlist_stats, rent_exponent, Circuit, GcellGrid, Placement, Rect};
use vlsi_place::GlobalPlacer;
use vlsi_route::{route as route_circuit, CapacityConfig, Dir, RouterConfig};

use crate::args::Args;

type CmdResult = Result<(), Box<dyn Error>>;

/// `lhnn generate`: synthesise + place + write Bookshelf.
pub fn generate(args: &Args) -> CmdResult {
    let cfg = SynthConfig {
        name: args.get("name", "design"),
        seed: args.num("seed", 1u64),
        n_cells: args.num("cells", 800usize),
        grid_nx: args.num("grid", 24u32),
        grid_ny: args.num("grid", 24u32),
        ..SynthConfig::default()
    };
    let out_dir = args.get("out", ".");
    let synth = synth_generate(&cfg)?;
    let grid = cfg.grid();
    let placed = GlobalPlacer::default().place_synth(&synth, &grid)?;
    bookshelf::write_design(Path::new(&out_dir), &synth.circuit, &placed.placement)?;
    println!(
        "generated `{}`: {} cells ({} terminals), {} nets, hpwl {:.0}",
        cfg.name,
        synth.circuit.num_cells(),
        synth.circuit.num_terminals(),
        synth.circuit.num_nets(),
        placed.hpwl
    );
    println!("wrote {out_dir}/{}.{{aux,nodes,nets,pl}}", cfg.name);
    Ok(())
}

fn load_design(args: &Args) -> Result<(Circuit, Placement), Box<dyn Error>> {
    let dir = args.opt("dir").ok_or("missing --dir")?.to_string();
    let design = args.opt("design").ok_or("missing --design")?;
    let (circuit, placement) = bookshelf::read_design(Path::new(&dir), design)?;
    circuit.validate()?;
    Ok((circuit, placement))
}

fn grid_for(args: &Args, circuit: &Circuit) -> GcellGrid {
    let g = args.num("grid", 24u32);
    let die = if circuit.die.area() > 0.0 { circuit.die } else { Rect::new(0.0, 0.0, 1.0, 1.0) };
    GcellGrid::new(die, g, g)
}

/// `lhnn stats`: netlist statistics.
pub fn stats(args: &Args) -> CmdResult {
    let (circuit, _) = load_design(args)?;
    let s = netlist_stats(&circuit);
    println!("design: {}", circuit.name);
    println!("cells: {} ({} terminals)", circuit.num_cells(), circuit.num_terminals());
    println!(
        "nets: {} (mean degree {:.2}, max {})",
        circuit.num_nets(),
        s.mean_degree,
        s.max_degree
    );
    println!("2-pin fraction: {:.1}%", s.two_pin_fraction * 100.0);
    println!("mean nets per cell: {:.2}", s.mean_cell_fanout);
    match rent_exponent(&circuit, 7) {
        Some(p) => println!("rent exponent (sampled): {p:.2}"),
        None => println!("rent exponent: n/a (too few movable cells)"),
    }
    println!("degree histogram (degree: count):");
    for (d, n) in s.degree_histogram.iter().enumerate().filter(|(_, &n)| n > 0) {
        println!("  {d:>3}: {n}");
    }
    Ok(())
}

/// `lhnn route`: global routing + congestion report.
pub fn route(args: &Args) -> CmdResult {
    let (circuit, placement) = load_design(args)?;
    let grid = grid_for(args, &circuit);
    let tracks = args.num("tracks", 14.0f32);
    let rcfg = RouterConfig {
        capacity: CapacityConfig { h_tracks: tracks, v_tracks: tracks, ..Default::default() },
        ..Default::default()
    };
    let routed = route_circuit(&circuit, &placement, &grid, &[], &rcfg)?;
    println!("design: {} on {}x{} g-cells", circuit.name, grid.nx(), grid.ny());
    println!("wirelength: {} g-cell steps", routed.wirelength);
    println!(
        "overflowed edges: {} (total overflow {:.1})",
        routed.overflowed_edges, routed.total_overflow
    );
    println!(
        "congestion rate: {:.2}% (h {:.2}%, v {:.2}%)",
        routed.congestion_rate() * 100.0,
        routed.labels.congestion_rate(Dir::H) * 100.0,
        routed.labels.congestion_rate(Dir::V) * 100.0
    );
    if let Some(prefix) = args.opt("pgm") {
        let (nx, ny) = (grid.nx() as usize, grid.ny() as usize);
        write_pgm(&routed.labels.demand_h, nx, ny, Path::new(&format!("{prefix}_demand_h.pgm")))?;
        write_pgm(&routed.labels.demand_v, nx, ny, Path::new(&format!("{prefix}_demand_v.pgm")))?;
        println!("wrote {prefix}_demand_h.pgm / {prefix}_demand_v.pgm");
    }
    Ok(())
}

/// `lhnn train`: train on the synthetic suite and save the model.
pub fn train(args: &Args) -> CmdResult {
    let scale = args.num("scale", 0.5f32);
    let epochs = args.num("epochs", 60usize);
    let seed = args.num("seed", 0u64);
    let out = args.get("out", "model.lhnn");
    eprintln!("building training suite (scale {scale})...");
    let ds = DatasetConfig { scale, ..Default::default() };
    let prep = PreparedDataset::build(&ds)?;
    let train_set = prep.train_samples();
    let test_set = prep.test_samples();
    let mut model =
        Lhnn::new(LhnnConfig { channel_mode: ChannelMode::Uni, ..Default::default() }, seed);
    eprintln!(
        "training {} parameters for {epochs} epochs on {} designs...",
        model.num_parameters(),
        train_set.len()
    );
    let cfg = TrainConfig { epochs, seed, ..Default::default() };
    let history = train_model(&mut model, &train_set, &AblationSpec::full(), &cfg);
    let eval = evaluate(&model, &test_set, &AblationSpec::full());
    println!(
        "final loss {:.4}; held-out F1 {:.3}, accuracy {:.3}",
        history.epoch_loss.last().copied().unwrap_or(f32::NAN),
        eval.f1,
        eval.accuracy
    );
    model.save(File::create(&out)?)?;
    println!("model written to {out}");
    Ok(())
}

/// `lhnn predict`: load a model, predict a congestion map for a design.
pub fn predict(args: &Args) -> CmdResult {
    let model_path = args.opt("model").ok_or("missing --model")?;
    let model = Lhnn::load(File::open(model_path)?)?;
    let (circuit, placement) = load_design(args)?;
    let grid = grid_for(args, &circuit);
    let graph = LhGraph::build(&circuit, &placement, &grid, &LhGraphConfig::default())?;
    let (gd, nd) = FeatureSet::default_divisors();
    let features = FeatureSet::build(&graph, &circuit, &placement, &grid)?.scaled_fixed(&gd, &nd);
    let ops = lhnn::GraphOps::from_graph(&graph, &AblationSpec::full());
    let pred = model.predict(&ops, &features);
    let prob: Vec<f32> = (0..pred.cls_prob.rows()).map(|r| pred.cls_prob[(r, 0)]).collect();
    let predicted_rate = prob.iter().filter(|&&p| p >= 0.5).count() as f64 / prob.len() as f64;
    println!("design: {} on {}x{} g-cells", circuit.name, grid.nx(), grid.ny());
    println!("predicted congestion rate: {:.2}%", predicted_rate * 100.0);
    println!("{}", ascii_map(&prob, grid.nx() as usize, grid.ny() as usize));
    if let Some(path) = args.opt("pgm") {
        write_pgm(&prob, grid.nx() as usize, grid.ny() as usize, Path::new(path))?;
        println!("probability map written to {path}");
    }
    if args.has("compare") {
        let tracks = args.num("tracks", 14.0f32);
        let rcfg = RouterConfig {
            capacity: CapacityConfig { h_tracks: tracks, v_tracks: tracks, ..Default::default() },
            ..Default::default()
        };
        let routed = route_circuit(&circuit, &placement, &grid, &[], &rcfg)?;
        let targets = Targets::from_labels(&routed.labels);
        let label = targets.congestion_channels(ChannelMode::Uni);
        let conf = Confusion::from_scores(&prob, label.as_slice(), 0.5);
        println!(
            "vs global router: F1 {:.3}, accuracy {:.3} (router congestion rate {:.2}%)",
            conf.f1(),
            conf.accuracy(),
            routed.congestion_rate() * 100.0
        );
        // keep the sample around so the types stay exercised
        let _ = Sample { name: circuit.name.clone(), graph, features, targets };
    }
    Ok(())
}
