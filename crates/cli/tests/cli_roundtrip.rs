//! End-to-end tests of the `lhnn` binary: generate → stats → route →
//! train → predict on temp directories.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lhnn"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lhnn_cli_test_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn usage_on_unknown_command() {
    let out = bin().arg("bogus").output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn generate_stats_route_pipeline() {
    let dir = temp_dir("pipeline");
    let out = bin()
        .args(["generate", "--cells", "300", "--grid", "12", "--seed", "5", "--name", "t"])
        .args(["--out", dir.to_str().unwrap()])
        .output()
        .expect("generate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(dir.join("t.nodes").exists());
    assert!(dir.join("t.pl").exists());

    let out = bin()
        .args(["stats", "--dir", dir.to_str().unwrap(), "--design", "t"])
        .output()
        .expect("stats");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2-pin fraction"), "{text}");

    let out = bin()
        .args(["route", "--dir", dir.to_str().unwrap(), "--design", "t", "--grid", "12"])
        .output()
        .expect("route");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("congestion rate"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn train_then_predict_roundtrip() {
    let dir = temp_dir("train_predict");
    let model = dir.join("model.lhnn");
    // tiny protocol: scale 0.1, 2 epochs — exercises the path, not quality
    let out = bin()
        .args(["train", "--scale", "0.1", "--epochs", "2", "--seed", "1"])
        .args(["--out", model.to_str().unwrap()])
        .output()
        .expect("train");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(model.exists());

    let out = bin()
        .args(["generate", "--cells", "200", "--grid", "12", "--seed", "9", "--name", "p"])
        .args(["--out", dir.to_str().unwrap()])
        .output()
        .expect("generate");
    assert!(out.status.success());

    let out = bin()
        .args(["predict", "--model", model.to_str().unwrap()])
        .args(["--dir", dir.to_str().unwrap(), "--design", "p", "--grid", "12", "--compare"])
        .output()
        .expect("predict");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("predicted congestion rate"), "{text}");
    assert!(text.contains("vs global router"), "{text}");

    // --threshold is plumbed through the served path: an impossible
    // threshold flags nothing, threshold 0 flags everything
    let out = bin()
        .args(["predict", "--model", model.to_str().unwrap(), "--threshold", "2.0"])
        .args(["--dir", dir.to_str().unwrap(), "--design", "p", "--grid", "12"])
        .output()
        .expect("predict hi threshold");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("predicted congestion rate: 0.00%"), "{text}");
    let out = bin()
        .args(["predict", "--model", model.to_str().unwrap(), "--threshold", "0.0"])
        .args(["--dir", dir.to_str().unwrap(), "--design", "p", "--grid", "12"])
        .output()
        .expect("predict lo threshold");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("predicted congestion rate: 100.00%"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn loop_bench_smoke() {
    let dir = temp_dir("loop_bench");
    let json = dir.join("BENCH_incremental.json");
    let out = bin()
        .args(["loop-bench", "--cells", "200", "--grid", "12", "--rounds", "2"])
        .args(["--json", json.to_str().unwrap()])
        .output()
        .expect("loop-bench");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("bitwise parity after replay: OK"), "{text}");
    assert!(text.contains("session replay:"), "{text}");
    assert!(text.contains("micro-bench"), "{text}");
    let bench = std::fs::read_to_string(&json).expect("bench json written");
    assert!(bench.contains("\"bench\": \"incremental\""), "{bench}");
    assert!(bench.contains("update_k1"), "{bench}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_bench_smoke() {
    let out = bin()
        .args(["serve-bench", "--designs", "2", "--requests", "8", "--workers", "2"])
        .args(["--clients", "2", "--cells", "80", "--grid", "8"])
        .output()
        .expect("serve-bench");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("parallel speedup"), "{text}");
    assert!(text.contains("cache hit rate"), "{text}");
    assert!(text.contains("engine stats"), "{text}");
}

#[test]
fn predict_rejects_missing_model() {
    let out = bin()
        .args(["predict", "--model", "/nonexistent/model.lhnn", "--dir", "/tmp", "--design", "x"])
        .output()
        .expect("predict");
    assert!(!out.status.success());
}
