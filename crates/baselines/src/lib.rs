//! `lhnn-baselines` — the comparison models of the LHNN paper (§5.2):
//! a per-G-cell residual [`MlpBaseline`], a [`UNetModel`] and a
//! [`Pix2PixModel`], all consuming the same four G-cell feature channels
//! and predicting the congestion mask with the γ-weighted BCE.
//!
//! All three implement [`ImageModel`] over [`ImageSample`]s (feature maps
//! in `(channels, height·width)` layout), so the experiment harness can
//! swap them freely.
//!
//! # Example
//!
//! ```
//! use lhnn_baselines::{BaselineTrainConfig, ImageModel, MlpBaseline, ImageSample};
//! use neurograd::Matrix;
//!
//! let feats = Matrix::zeros(16, 4);
//! let cong = Matrix::zeros(16, 1);
//! let sample = ImageSample::from_node_major("demo", 4, 4, &feats, &cong);
//! let mut model = MlpBaseline::new(4, 1, 8, 0);
//! model.fit(&[sample.clone()], &BaselineTrainConfig { epochs: 1, ..Default::default() });
//! assert_eq!(model.predict(&sample).shape(), (1, 16));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod conv_layer;
pub mod image;
pub mod mlp;
pub mod pix2pix;
pub mod unet;

pub use conv_layer::Conv2dLayer;
pub use image::{BaselineTrainConfig, ImageModel, ImageSample};
pub use mlp::MlpBaseline;
pub use pix2pix::Pix2PixModel;
pub use unet::UNetModel;
