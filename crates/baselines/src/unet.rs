//! U-Net baseline (Ronneberger et al., MICCAI 2015).
//!
//! A two-level encoder/decoder with skip connections, sized for the G-cell
//! grids of this reproduction (grid dims must be divisible by 4). The
//! paper uses the popular `milesial/Pytorch-UNet` implementation on
//! 256×256 crops; this is the same family scaled to our maps. Trained with
//! the same γ-weighted BCE as LHNN, predicting the congestion mask.

use std::sync::Arc;

use neurograd::{Adam, Matrix, Optimizer, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::conv_layer::Conv2dLayer;
use crate::image::{BaselineTrainConfig, ImageModel, ImageSample};

/// A double 3×3 convolution block (conv-relu ×2).
#[derive(Debug, Clone)]
pub(crate) struct DoubleConv {
    c1: Conv2dLayer,
    c2: Conv2dLayer,
}

impl DoubleConv {
    pub(crate) fn new(
        store: &mut ParamStore,
        name: &str,
        in_ch: usize,
        out_ch: usize,
        rng: &mut StdRng,
    ) -> Self {
        Self {
            c1: Conv2dLayer::new(store, &format!("{name}.c1"), in_ch, out_ch, 3, 1, 1, rng),
            c2: Conv2dLayer::new(store, &format!("{name}.c2"), out_ch, out_ch, 3, 1, 1, rng),
        }
    }

    pub(crate) fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: Var,
        h: usize,
        w: usize,
    ) -> Var {
        let (y, _, _) = self.c1.forward(tape, store, x, h, w);
        let y = tape.relu(y);
        let (y, _, _) = self.c2.forward(tape, store, y, h, w);
        tape.relu(y)
    }
}

/// The U-Net generator network (shared with Pix2Pix).
#[derive(Debug, Clone)]
pub(crate) struct UNetNet {
    enc1: DoubleConv,
    enc2: DoubleConv,
    bottleneck: DoubleConv,
    dec2: DoubleConv,
    dec1: DoubleConv,
    out: Conv2dLayer,
    pub(crate) in_dim: usize,
    pub(crate) out_dim: usize,
}

impl UNetNet {
    pub(crate) fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        features: usize,
        rng: &mut StdRng,
    ) -> Self {
        let f = features;
        Self {
            enc1: DoubleConv::new(store, &format!("{name}.enc1"), in_dim, f, rng),
            enc2: DoubleConv::new(store, &format!("{name}.enc2"), f, 2 * f, rng),
            bottleneck: DoubleConv::new(store, &format!("{name}.bott"), 2 * f, 4 * f, rng),
            dec2: DoubleConv::new(store, &format!("{name}.dec2"), 4 * f + 2 * f, 2 * f, rng),
            dec1: DoubleConv::new(store, &format!("{name}.dec1"), 2 * f + f, f, rng),
            out: Conv2dLayer::new(store, &format!("{name}.out"), f, out_dim, 1, 1, 0, rng),
            in_dim,
            out_dim,
        }
    }

    /// Forward pass; returns logits `(out_dim, h·w)`.
    ///
    /// # Panics
    ///
    /// Panics if `h` or `w` is not divisible by 4.
    pub(crate) fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: Var,
        h: usize,
        w: usize,
    ) -> Var {
        assert!(
            h.is_multiple_of(4) && w.is_multiple_of(4),
            "u-net needs dims divisible by 4, got {h}x{w}"
        );
        assert_eq!(
            tape.shape(x),
            (self.in_dim, h * w),
            "u-net input must be ({}, {}x{})",
            self.in_dim,
            h,
            w
        );
        let e1 = self.enc1.forward(tape, store, x, h, w); // (f, h*w)
        let p1 = tape.max_pool2d(e1, h, w); // h/2
        let (h2, w2) = (h / 2, w / 2);
        let e2 = self.enc2.forward(tape, store, p1, h2, w2); // (2f, ...)
        let p2 = tape.max_pool2d(e2, h2, w2);
        let (h4, w4) = (h2 / 2, w2 / 2);
        let b = self.bottleneck.forward(tape, store, p2, h4, w4); // (4f, ...)
        let u2 = tape.upsample_nearest2(b, h4, w4); // back to h/2
                                                    // channel concat = row concat in (C, HW) layout
        let cat2 = tape.concat_rows(u2, e2);
        let d2 = self.dec2.forward(tape, store, cat2, h2, w2);
        let u1 = tape.upsample_nearest2(d2, h2, w2);
        let cat1 = tape.concat_rows(u1, e1);
        let d1 = self.dec1.forward(tape, store, cat1, h, w);
        let (logits, _, _) = self.out.forward(tape, store, d1, h, w);
        debug_assert_eq!(tape.shape(logits), (self.out_dim, h * w));
        logits
    }
}

/// U-Net congestion classifier.
#[derive(Debug)]
pub struct UNetModel {
    store: ParamStore,
    net: UNetNet,
}

impl UNetModel {
    /// Creates a U-Net with the given base feature width (paper-scale
    /// models use 64; 8–16 suits our map sizes).
    pub fn new(in_dim: usize, out_dim: usize, features: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let net = UNetNet::new(&mut store, "unet", in_dim, out_dim, features, &mut rng);
        Self { store, net }
    }

    /// Number of scalar parameters.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }
}

impl ImageModel for UNetModel {
    fn name(&self) -> &'static str {
        "unet"
    }

    fn fit(&mut self, samples: &[ImageSample], cfg: &BaselineTrainConfig) {
        let mut opt = Adam::new(cfg.lr);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        for _epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let s = &samples[i];
                let mut tape = Tape::new();
                let x = tape.leaf(s.input.clone());
                let logits = self.net.forward(&mut tape, &self.store, x, s.ny, s.nx);
                let targets = s.target_cls.clone();
                let weights = targets.map(|y| y + (1.0 - y) * cfg.gamma);
                let loss = tape.bce_with_logits(logits, Arc::new(targets), Arc::new(weights));
                tape.backward(loss);
                self.store.absorb_grads(&mut tape);
                if cfg.grad_clip > 0.0 {
                    self.store.clip_grad_norm(cfg.grad_clip);
                }
                opt.step(&mut self.store);
                self.store.zero_grad();
            }
        }
    }

    fn predict(&self, sample: &ImageSample) -> Matrix {
        let mut tape = Tape::new();
        let x = tape.leaf(sample.input.clone());
        let logits = self.net.forward(&mut tape, &self.store, x, sample.ny, sample.nx);
        let prob = tape.sigmoid(logits);
        tape.value(prob).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_samples(n: usize) -> Vec<ImageSample> {
        // target: a 4x4 blob in an 8x8 image marked where channel 0 is hot
        (0..n)
            .map(|k| {
                let cells = 64;
                let mut feats = Matrix::zeros(cells, 2);
                let mut cong = Matrix::zeros(cells, 1);
                let ox = (k % 3) + 1;
                for y in 0..8usize {
                    for x in 0..8usize {
                        let idx = y * 8 + x;
                        let hot = x >= ox && x < ox + 4 && (2..6).contains(&y);
                        feats[(idx, 0)] = if hot { 1.0 } else { 0.0 };
                        feats[(idx, 1)] = 0.5;
                        cong[(idx, 0)] = if hot { 1.0 } else { 0.0 };
                    }
                }
                ImageSample::from_node_major(format!("blob{k}"), 8, 8, &feats, &cong)
            })
            .collect()
    }

    #[test]
    fn unet_learns_blob_task() {
        let samples = blob_samples(3);
        let mut model = UNetModel::new(2, 1, 4, 0);
        let cfg = BaselineTrainConfig { epochs: 30, lr: 5e-3, ..Default::default() };
        model.fit(&samples, &cfg);
        let pred = model.predict(&samples[0]);
        let target = &samples[0].target_cls;
        let correct = pred
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .filter(|(&p, &y)| (p >= 0.5) == (y >= 0.5))
            .count();
        assert!(correct >= 56, "only {correct}/64 correct");
    }

    #[test]
    fn prediction_shape() {
        let samples = blob_samples(1);
        let model = UNetModel::new(2, 1, 4, 0);
        let p = model.predict(&samples[0]);
        assert_eq!(p.shape(), (1, 64));
    }

    #[test]
    #[should_panic(expected = "divisible by 4")]
    fn rejects_odd_grid() {
        let feats = Matrix::zeros(36, 2);
        let cong = Matrix::zeros(36, 1);
        let s = ImageSample::from_node_major("odd", 6, 6, &feats, &cong);
        let model = UNetModel::new(2, 1, 4, 0);
        model.predict(&s);
    }

    #[test]
    fn parameter_count_grows_with_features() {
        let small = UNetModel::new(4, 1, 4, 0).num_parameters();
        let large = UNetModel::new(4, 1, 8, 0).num_parameters();
        assert!(large > small * 3);
    }
}
