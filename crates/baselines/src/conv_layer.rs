//! A convolution layer wrapper shared by the U-Net and Pix2Pix models.

use neurograd::{Conv2dCfg, ParamId, ParamStore, Tape, Var};
use rand::rngs::StdRng;

/// A 2-D convolution with persistent weights.
///
/// Shapes adapt to any input `(h, w)` at forward time, so one model serves
/// designs with different grid sizes. [`Conv2dLayer::new`] uses Kaiming
/// initialisation (right for the norm-free ReLU stacks used here);
/// [`Conv2dLayer::new_with_std`] gives the `N(0, 0.02)` init of the
/// Pix2Pix reference discriminator.
#[derive(Debug, Clone)]
pub struct Conv2dLayer {
    weight: ParamId,
    bias: ParamId,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
}

impl Conv2dLayer {
    /// Creates a conv layer with Kaiming-normal weights.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut StdRng,
    ) -> Self {
        let fan_in = in_ch * kernel * kernel;
        let weight = store.register(
            format!("{name}.weight"),
            neurograd::init::kaiming_normal(out_ch, fan_in, fan_in, rng),
        );
        let bias = store.register(format!("{name}.bias"), neurograd::Matrix::zeros(out_ch, 1));
        Self { weight, bias, in_ch, out_ch, kernel, stride, padding }
    }

    /// Creates a conv layer with `N(0, std)` weights (Pix2Pix convention
    /// uses `std = 0.02`).
    #[allow(clippy::too_many_arguments)]
    pub fn new_with_std(
        store: &mut ParamStore,
        name: &str,
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        std: f32,
        rng: &mut StdRng,
    ) -> Self {
        let weight = store.register(
            format!("{name}.weight"),
            neurograd::init::normal(out_ch, in_ch * kernel * kernel, std, rng),
        );
        let bias = store.register(format!("{name}.bias"), neurograd::Matrix::zeros(out_ch, 1));
        Self { weight, bias, in_ch, out_ch, kernel, stride, padding }
    }

    /// Input channel count.
    pub fn in_ch(&self) -> usize {
        self.in_ch
    }

    /// Output channel count.
    pub fn out_ch(&self) -> usize {
        self.out_ch
    }

    /// Applies the convolution to a `(C_in, h·w)` feature map; returns the
    /// output and its spatial dims.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: Var,
        h: usize,
        w: usize,
    ) -> (Var, usize, usize) {
        let cfg = Conv2dCfg {
            in_channels: self.in_ch,
            out_channels: self.out_ch,
            height: h,
            width: w,
            kernel: self.kernel,
            stride: self.stride,
            padding: self.padding,
        };
        let wv = store.var(self.weight, tape);
        let bv = store.var(self.bias, tape);
        let y = tape.conv2d(x, wv, bv, cfg);
        (y, cfg.out_height(), cfg.out_width())
    }

    /// Applies the convolution with *frozen* weights (no gradient flows to
    /// the parameters) — used when the discriminator scores generator
    /// output inside the generator's update tape.
    pub fn forward_frozen(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        x: Var,
        h: usize,
        w: usize,
    ) -> (Var, usize, usize) {
        let cfg = Conv2dCfg {
            in_channels: self.in_ch,
            out_channels: self.out_ch,
            height: h,
            width: w,
            kernel: self.kernel,
            stride: self.stride,
            padding: self.padding,
        };
        let wv = tape.leaf(store.param(self.weight).value.clone());
        let bv = tape.leaf(store.param(self.bias).value.clone());
        let y = tape.conv2d(x, wv, bv, cfg);
        (y, cfg.out_height(), cfg.out_width())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurograd::Matrix;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2dLayer::new(&mut store, "c", 3, 8, 3, 1, 1, &mut rng);
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::zeros(3, 16));
        let (y, oh, ow) = conv.forward(&mut tape, &store, x, 4, 4);
        assert_eq!((oh, ow), (4, 4));
        assert_eq!(tape.shape(y), (8, 16));
    }

    #[test]
    fn strided_conv_downsamples() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2dLayer::new(&mut store, "c", 1, 4, 3, 2, 1, &mut rng);
        let mut tape = Tape::new();
        let x = tape.leaf(Matrix::zeros(1, 64));
        let (_, oh, ow) = conv.forward(&mut tape, &store, x, 8, 8);
        assert_eq!((oh, ow), (4, 4));
    }

    #[test]
    fn frozen_forward_gives_no_param_grads() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let conv = Conv2dLayer::new(&mut store, "c", 1, 1, 1, 1, 0, &mut rng);
        let mut tape = Tape::new();
        let x = tape.leaf_grad(Matrix::full(1, 4, 1.0));
        let (y, _, _) = conv.forward_frozen(&mut tape, &store, x, 2, 2);
        let loss = tape.sum_all(y);
        tape.backward(loss);
        store.absorb_grads(&mut tape);
        assert_eq!(store.grad_norm(), 0.0);
        // but the input still receives gradient
        assert!(tape.grad(x).is_some());
    }
}
