//! Image-style data layout for the CNN baselines.
//!
//! The paper feeds U-Net and Pix2Pix the four G-cell feature channels as a
//! 2-D image and trains against the congestion mask. [`ImageSample`]
//! holds that view: feature maps and targets as `(channels, height·width)`
//! matrices in the same row-major G-cell order used everywhere else
//! (`index = gy · nx + gx`).

use neurograd::Matrix;
use serde::{Deserialize, Serialize};

/// Training data for one design in image layout.
#[derive(Debug, Clone)]
pub struct ImageSample {
    /// Design name.
    pub name: String,
    /// Grid columns (image width).
    pub nx: usize,
    /// Grid rows (image height).
    pub ny: usize,
    /// Input feature maps, `(C_in, ny·nx)`.
    pub input: Matrix,
    /// Binary congestion targets, `(channels, ny·nx)`.
    pub target_cls: Matrix,
}

impl ImageSample {
    /// Builds an image sample from node-major matrices (`N × C`), i.e. the
    /// layout used by the LH-graph feature/target sets.
    ///
    /// # Panics
    ///
    /// Panics if row counts don't equal `nx · ny`.
    pub fn from_node_major(
        name: impl Into<String>,
        nx: usize,
        ny: usize,
        gcell_features: &Matrix,
        congestion: &Matrix,
    ) -> Self {
        assert_eq!(gcell_features.rows(), nx * ny, "feature rows != grid size");
        assert_eq!(congestion.rows(), nx * ny, "target rows != grid size");
        Self {
            name: name.into(),
            nx,
            ny,
            input: gcell_features.transpose(),
            target_cls: congestion.transpose(),
        }
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.input.rows()
    }

    /// Number of target channels.
    pub fn out_channels(&self) -> usize {
        self.target_cls.rows()
    }

    /// Flattened targets in node-major order (`N × channels`), for metric
    /// computation shared with the graph models.
    pub fn targets_node_major(&self) -> Matrix {
        self.target_cls.transpose()
    }
}

/// Training configuration shared by the baselines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineTrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Label-balance γ (same role as in LHNN's Eq. 5).
    pub gamma: f32,
    /// Global gradient-norm clip (0 disables).
    pub grad_clip: f32,
    /// Seed for init + shuffling.
    pub seed: u64,
}

impl Default for BaselineTrainConfig {
    fn default() -> Self {
        Self { epochs: 150, lr: 2e-3, gamma: 0.7, grad_clip: 5.0, seed: 0 }
    }
}

/// A congestion predictor operating on image samples.
///
/// Implemented by [`MlpBaseline`](crate::MlpBaseline),
/// [`UNetModel`](crate::UNetModel) and
/// [`Pix2PixModel`](crate::Pix2PixModel).
pub trait ImageModel: std::fmt::Debug {
    /// Short display name (`mlp`, `unet`, `pix2pix`).
    fn name(&self) -> &'static str;

    /// Trains on the given samples.
    fn fit(&mut self, samples: &[ImageSample], cfg: &BaselineTrainConfig);

    /// Predicts congestion probabilities, `(channels, ny·nx)`.
    fn predict(&self, sample: &ImageSample) -> Matrix;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_major_roundtrip() {
        let feats = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0], &[7.0, 8.0]]);
        let cong = Matrix::from_rows(&[&[0.0], &[1.0], &[0.0], &[1.0]]);
        let img = ImageSample::from_node_major("d", 2, 2, &feats, &cong);
        assert_eq!(img.in_channels(), 2);
        assert_eq!(img.out_channels(), 1);
        assert_eq!(img.input.shape(), (2, 4));
        // channel 0 holds the first feature column
        assert_eq!(img.input.row(0), &[1.0, 3.0, 5.0, 7.0]);
        assert_eq!(img.targets_node_major(), cong);
    }

    #[test]
    #[should_panic(expected = "feature rows")]
    fn rejects_wrong_grid_size() {
        let feats = Matrix::zeros(3, 2);
        let cong = Matrix::zeros(3, 1);
        ImageSample::from_node_major("d", 2, 2, &feats, &cong);
    }
}
