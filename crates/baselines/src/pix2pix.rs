//! Pix2Pix baseline (Isola et al., CVPR 2017).
//!
//! Conditional image-to-image translation: a U-Net generator produces the
//! congestion mask from the feature maps, while a PatchGAN discriminator
//! scores (features, mask) pairs. The generator optimises
//! `λ_adv · BCE(D(x, G(x)), 1) + task-BCE(G(x), y; γ)`; the discriminator
//! alternates `BCE(D(x, y), 1) + BCE(D(x, G(x)), 0)`.
//!
//! As in the paper's comparison, the task supervision uses the same
//! γ-weighted congestion BCE as LHNN; the adversarial term is the
//! Pix2Pix-specific addition.

use std::sync::Arc;

use neurograd::{Adam, Matrix, Optimizer, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::conv_layer::Conv2dLayer;
use crate::image::{BaselineTrainConfig, ImageModel, ImageSample};
use crate::unet::UNetNet;

/// PatchGAN discriminator: 3 strided convs to `(1, h/4·w/4)` patch logits.
#[derive(Debug, Clone)]
struct PatchGan {
    c1: Conv2dLayer,
    c2: Conv2dLayer,
    c3: Conv2dLayer,
}

impl PatchGan {
    fn new(store: &mut ParamStore, in_ch: usize, features: usize, rng: &mut StdRng) -> Self {
        // N(0, 0.02) init as in the reference Pix2Pix discriminator.
        Self {
            c1: Conv2dLayer::new_with_std(store, "disc.c1", in_ch, features, 3, 2, 1, 0.02, rng),
            c2: Conv2dLayer::new_with_std(
                store,
                "disc.c2",
                features,
                2 * features,
                3,
                2,
                1,
                0.02,
                rng,
            ),
            c3: Conv2dLayer::new_with_std(store, "disc.c3", 2 * features, 1, 3, 1, 1, 0.02, rng),
        }
    }

    /// Patch logits for an (input ∥ mask) stack. With `frozen`, no
    /// gradient reaches the discriminator parameters.
    fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        xy: Var,
        h: usize,
        w: usize,
        frozen: bool,
    ) -> Var {
        let fwd = |layer: &Conv2dLayer, tape: &mut Tape, x: Var, h: usize, w: usize| {
            if frozen {
                layer.forward_frozen(tape, store, x, h, w)
            } else {
                layer.forward(tape, store, x, h, w)
            }
        };
        let (y, h1, w1) = fwd(&self.c1, tape, xy, h, w);
        let y = tape.leaky_relu(y, 0.2);
        let (y, h2, w2) = fwd(&self.c2, tape, y, h1, w1);
        let y = tape.leaky_relu(y, 0.2);
        let (logits, _, _) = fwd(&self.c3, tape, y, h2, w2);
        logits
    }
}

/// The Pix2Pix congestion model.
#[derive(Debug)]
pub struct Pix2PixModel {
    gen_store: ParamStore,
    disc_store: ParamStore,
    generator: UNetNet,
    discriminator: PatchGan,
    /// Weight of the adversarial term in the generator loss.
    pub adv_weight: f32,
}

impl Pix2PixModel {
    /// Creates the model. `features` sizes the generator (U-Net width);
    /// the discriminator uses the same base width.
    pub fn new(in_dim: usize, out_dim: usize, features: usize, seed: u64) -> Self {
        let mut gen_store = ParamStore::new();
        let mut disc_store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let generator = UNetNet::new(&mut gen_store, "gen", in_dim, out_dim, features, &mut rng);
        let discriminator = PatchGan::new(&mut disc_store, in_dim + out_dim, features, &mut rng);
        Self { gen_store, disc_store, generator, discriminator, adv_weight: 0.1 }
    }

    /// Number of scalar parameters (generator + discriminator).
    pub fn num_parameters(&self) -> usize {
        self.gen_store.num_scalars() + self.disc_store.num_scalars()
    }

    fn uniform_bce(tape: &mut Tape, logits: Var, target_value: f32) -> Var {
        let (r, c) = tape.shape(logits);
        let targets = Arc::new(Matrix::full(r, c, target_value));
        let weights = Arc::new(Matrix::full(r, c, 1.0));
        tape.bce_with_logits(logits, targets, weights)
    }
}

impl ImageModel for Pix2PixModel {
    fn name(&self) -> &'static str {
        "pix2pix"
    }

    fn fit(&mut self, samples: &[ImageSample], cfg: &BaselineTrainConfig) {
        let mut g_opt = Adam::new(cfg.lr);
        let mut d_opt = Adam::new(cfg.lr);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        for _epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let s = &samples[i];
                let (h, w) = (s.ny, s.nx);

                // ---- discriminator update ----
                {
                    let mut tape = Tape::new();
                    let x = tape.leaf(s.input.clone());
                    // real pair
                    let real_mask = tape.leaf(s.target_cls.clone());
                    let real_pair = tape.concat_rows(x, real_mask);
                    let real_logits = self.discriminator.forward(
                        &mut tape,
                        &self.disc_store,
                        real_pair,
                        h,
                        w,
                        false,
                    );
                    let loss_real = Self::uniform_bce(&mut tape, real_logits, 1.0);
                    // fake pair: generator output as a constant
                    let fake_value = {
                        let mut g_tape = Tape::new();
                        let gx = g_tape.leaf(s.input.clone());
                        let glogits =
                            self.generator.forward(&mut g_tape, &self.gen_store, gx, h, w);
                        let gprob = g_tape.sigmoid(glogits);
                        g_tape.value(gprob).clone()
                    };
                    let x2 = tape.leaf(s.input.clone());
                    let fake_mask = tape.leaf(fake_value);
                    let fake_pair = tape.concat_rows(x2, fake_mask);
                    let fake_logits = self.discriminator.forward(
                        &mut tape,
                        &self.disc_store,
                        fake_pair,
                        h,
                        w,
                        false,
                    );
                    let loss_fake = Self::uniform_bce(&mut tape, fake_logits, 0.0);
                    let d_loss = tape.add(loss_real, loss_fake);
                    tape.backward(d_loss);
                    self.disc_store.absorb_grads(&mut tape);
                    if cfg.grad_clip > 0.0 {
                        self.disc_store.clip_grad_norm(cfg.grad_clip);
                    }
                    d_opt.step(&mut self.disc_store);
                    self.disc_store.zero_grad();
                }

                // ---- generator update ----
                {
                    let mut tape = Tape::new();
                    let x = tape.leaf(s.input.clone());
                    let logits = self.generator.forward(&mut tape, &self.gen_store, x, h, w);
                    // task loss (γ-weighted congestion BCE)
                    let targets = s.target_cls.clone();
                    let weights = targets.map(|y| y + (1.0 - y) * cfg.gamma);
                    let task = tape.bce_with_logits(logits, Arc::new(targets), Arc::new(weights));
                    // adversarial loss through a frozen discriminator
                    let gprob = tape.sigmoid(logits);
                    let x2 = tape.leaf(s.input.clone());
                    let pair = tape.concat_rows(x2, gprob);
                    let d_logits =
                        self.discriminator.forward(&mut tape, &self.disc_store, pair, h, w, true);
                    let adv = Self::uniform_bce(&mut tape, d_logits, 1.0);
                    let adv_scaled = tape.scale(adv, self.adv_weight);
                    let g_loss = tape.add(task, adv_scaled);
                    tape.backward(g_loss);
                    self.gen_store.absorb_grads(&mut tape);
                    if cfg.grad_clip > 0.0 {
                        self.gen_store.clip_grad_norm(cfg.grad_clip);
                    }
                    g_opt.step(&mut self.gen_store);
                    self.gen_store.zero_grad();
                }
            }
        }
    }

    fn predict(&self, sample: &ImageSample) -> Matrix {
        let mut tape = Tape::new();
        let x = tape.leaf(sample.input.clone());
        let logits = self.generator.forward(&mut tape, &self.gen_store, x, sample.ny, sample.nx);
        let prob = tape.sigmoid(logits);
        tape.value(prob).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_samples(n: usize) -> Vec<ImageSample> {
        (0..n)
            .map(|k| {
                let cells = 64;
                let mut feats = Matrix::zeros(cells, 2);
                let mut cong = Matrix::zeros(cells, 1);
                let oy = (k % 3) + 1;
                for y in 0..8usize {
                    for x in 0..8usize {
                        let idx = y * 8 + x;
                        let hot = y >= oy && y < oy + 3 && (2..6).contains(&x);
                        feats[(idx, 0)] = if hot { 1.0 } else { 0.0 };
                        feats[(idx, 1)] = x as f32 / 8.0;
                        cong[(idx, 0)] = if hot { 1.0 } else { 0.0 };
                    }
                }
                ImageSample::from_node_major(format!("b{k}"), 8, 8, &feats, &cong)
            })
            .collect()
    }

    #[test]
    fn pix2pix_learns_blob_task() {
        let samples = blob_samples(3);
        let mut model = Pix2PixModel::new(2, 1, 4, 0);
        let cfg = BaselineTrainConfig { epochs: 25, lr: 5e-3, ..Default::default() };
        model.fit(&samples, &cfg);
        let pred = model.predict(&samples[0]);
        let target = &samples[0].target_cls;
        let correct = pred
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .filter(|(&p, &y)| (p >= 0.5) == (y >= 0.5))
            .count();
        assert!(correct >= 52, "only {correct}/64 correct");
    }

    #[test]
    fn discriminator_distinguishes_after_training() {
        // after fitting, D(real) logits should exceed D(zeros) on average
        let samples = blob_samples(2);
        let mut model = Pix2PixModel::new(2, 1, 4, 1);
        let cfg = BaselineTrainConfig { epochs: 15, lr: 5e-3, ..Default::default() };
        model.fit(&samples, &cfg);
        let s = &samples[0];
        let mut tape = Tape::new();
        let x = tape.leaf(s.input.clone());
        let real = tape.leaf(s.target_cls.clone());
        let pair_real = tape.concat_rows(x, real);
        let real_logits =
            model.discriminator.forward(&mut tape, &model.disc_store, pair_real, 8, 8, true);
        let x2 = tape.leaf(s.input.clone());
        let junk = tape.leaf(Matrix::full(1, 64, 0.5));
        let pair_junk = tape.concat_rows(x2, junk);
        let junk_logits =
            model.discriminator.forward(&mut tape, &model.disc_store, pair_junk, 8, 8, true);
        let real_score = tape.value(real_logits).mean();
        let junk_score = tape.value(junk_logits).mean();
        assert!(
            real_score > junk_score,
            "discriminator untrained: real {real_score} vs junk {junk_score}"
        );
    }

    #[test]
    fn prediction_shape_and_determinism() {
        let samples = blob_samples(1);
        let a = Pix2PixModel::new(2, 1, 4, 5).predict(&samples[0]);
        let b = Pix2PixModel::new(2, 1, 4, 5).predict(&samples[0]);
        assert_eq!(a.shape(), (1, 64));
        assert!(a.approx_eq(&b, 0.0));
    }
}
