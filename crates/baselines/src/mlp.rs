//! The 4-layer residual MLP baseline.
//!
//! The paper's "vanilla" comparator: a per-G-cell residual MLP over the
//! four crafted features, sharing LHNN's hyper-parameters (hidden 32,
//! Adam, γ-weighted BCE). It sees no neighbourhood at all, so it measures
//! how informative the purely local crafted features are.

use std::sync::Arc;

use neurograd::{Activation, Adam, Linear, Matrix, Mlp, Optimizer, ParamStore, ResBlock, Tape};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::image::{BaselineTrainConfig, ImageModel, ImageSample};

/// Per-G-cell residual MLP (4 linear layers: in → h → h → h → out with a
/// skip over the middle pair).
#[derive(Debug)]
pub struct MlpBaseline {
    store: ParamStore,
    input: Linear,
    res1: ResBlock,
    head: Mlp,
    in_dim: usize,
    out_dim: usize,
}

impl MlpBaseline {
    /// Creates the baseline for the given channel counts.
    pub fn new(in_dim: usize, out_dim: usize, hidden: usize, seed: u64) -> Self {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let input =
            Linear::new(&mut store, "mlp.input", in_dim, hidden, Activation::Relu, &mut rng);
        let res1 = ResBlock::new(
            &mut store,
            "mlp.res1",
            hidden,
            hidden,
            hidden,
            Activation::Relu,
            &mut rng,
        );
        let head = Mlp::new(
            &mut store,
            "mlp.head",
            hidden,
            hidden,
            out_dim,
            2,
            Activation::Identity,
            &mut rng,
        );
        Self { store, input, res1, head, in_dim, out_dim }
    }

    /// Number of scalar parameters.
    pub fn num_parameters(&self) -> usize {
        self.store.num_scalars()
    }

    fn forward_nodes(&self, tape: &mut Tape, x_nodes: Matrix) -> neurograd::Var {
        let x = tape.leaf(x_nodes);
        let h = self.input.forward(tape, &self.store, x);
        let h = self.res1.forward(tape, &self.store, h);
        self.head.forward(tape, &self.store, h)
    }
}

impl ImageModel for MlpBaseline {
    fn name(&self) -> &'static str {
        "mlp"
    }

    fn fit(&mut self, samples: &[ImageSample], cfg: &BaselineTrainConfig) {
        let mut opt = Adam::new(cfg.lr);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        for _epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let s = &samples[i];
                assert_eq!(s.in_channels(), self.in_dim, "input channel mismatch");
                assert_eq!(s.out_channels(), self.out_dim, "target channel mismatch");
                let mut tape = Tape::new();
                let logits = self.forward_nodes(&mut tape, s.input.transpose());
                let targets = s.targets_node_major();
                let weights = targets.map(|y| y + (1.0 - y) * cfg.gamma);
                let loss = tape.bce_with_logits(logits, Arc::new(targets), Arc::new(weights));
                tape.backward(loss);
                self.store.absorb_grads(&mut tape);
                if cfg.grad_clip > 0.0 {
                    self.store.clip_grad_norm(cfg.grad_clip);
                }
                opt.step(&mut self.store);
                self.store.zero_grad();
            }
        }
    }

    fn predict(&self, sample: &ImageSample) -> Matrix {
        let mut tape = Tape::new();
        let logits = self.forward_nodes(&mut tape, sample.input.transpose());
        let prob = tape.sigmoid(logits);
        tape.value(prob).transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy task where the target is a threshold on channel 0.
    fn toy_samples(n: usize) -> Vec<ImageSample> {
        (0..n)
            .map(|k| {
                let cells = 16;
                let mut feats = Matrix::zeros(cells, 2);
                let mut cong = Matrix::zeros(cells, 1);
                for i in 0..cells {
                    let v = ((i + k) % cells) as f32 / cells as f32;
                    feats[(i, 0)] = v;
                    feats[(i, 1)] = 1.0 - v;
                    cong[(i, 0)] = if v > 0.5 { 1.0 } else { 0.0 };
                }
                ImageSample::from_node_major(format!("toy{k}"), 4, 4, &feats, &cong)
            })
            .collect()
    }

    #[test]
    fn learns_threshold_rule() {
        let samples = toy_samples(4);
        let mut model = MlpBaseline::new(2, 1, 16, 0);
        let cfg = BaselineTrainConfig { epochs: 80, ..Default::default() };
        model.fit(&samples, &cfg);
        let pred = model.predict(&samples[0]);
        let target = &samples[0].target_cls;
        let correct = pred
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .filter(|(&p, &y)| (p >= 0.5) == (y >= 0.5))
            .count();
        assert!(correct >= 14, "only {correct}/16 correct");
    }

    #[test]
    fn prediction_shape_and_range() {
        let samples = toy_samples(1);
        let model = MlpBaseline::new(2, 1, 8, 0);
        let p = model.predict(&samples[0]);
        assert_eq!(p.shape(), (1, 16));
        assert!(p.as_slice().iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn init_is_deterministic() {
        let samples = toy_samples(1);
        let a = MlpBaseline::new(2, 1, 8, 3).predict(&samples[0]);
        let b = MlpBaseline::new(2, 1, 8, 3).predict(&samples[0]);
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn has_four_linear_layers_worth_of_params() {
        let model = MlpBaseline::new(4, 1, 32, 0);
        // input + res(2 + maybe proj) + head(2) linear layers => 8 tensors minimum
        assert!(model.num_parameters() > 3000);
    }
}
