//! Error type for the `vlsi-route` crate.

use std::error::Error as StdError;
use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, RouteError>;

/// Errors produced by global routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The router configuration was invalid.
    InvalidConfig(String),
    /// A net could not be routed (disconnected grid region).
    Unroutable {
        /// Net name.
        net: String,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::InvalidConfig(m) => write!(f, "invalid router configuration: {m}"),
            RouteError::Unroutable { net, reason } => {
                write!(f, "net `{net}` is unroutable: {reason}")
            }
        }
    }
}

impl StdError for RouteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RouteError::Unroutable { net: "n7".into(), reason: "blocked".into() };
        assert!(e.to_string().contains("n7") && e.to_string().contains("blocked"));
        assert!(RouteError::InvalidConfig("x".into()).to_string().contains("x"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RouteError>();
    }
}
