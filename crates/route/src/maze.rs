//! Maze routing: A* search on the G-cell grid under the congestion cost
//! model. Used as the rip-up-and-reroute fallback when pattern routes
//! overflow — equivalent in role to NCTU-GR's bounded-length maze stage.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use vlsi_netlist::{GcellCoord, GcellGrid};

use crate::cost::CostModel;
use crate::maps::EdgeField;

#[derive(Debug, PartialEq)]
struct HeapEntry {
    f: f32,
    counter: u64,
    node: usize,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // min-heap on (f, counter): reversed comparison, total_cmp for NaN
        // safety, counter as deterministic tie-break (FIFO).
        other.f.total_cmp(&self.f).then_with(|| other.counter.cmp(&self.counter))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A* search from `from` to `to`.
///
/// Edge costs come from the [`CostModel`] under the current usage,
/// capacity and history fields; the heuristic is the Manhattan distance
/// (admissible because every edge costs at least 1). Returns `None` only
/// if the grid is degenerate (cannot happen on a connected lattice).
pub fn maze_route(
    grid: &GcellGrid,
    from: GcellCoord,
    to: GcellCoord,
    usage: &EdgeField,
    capacity: &EdgeField,
    history: &EdgeField,
    model: &CostModel,
) -> Option<Vec<GcellCoord>> {
    let n = grid.num_gcells();
    let start = grid.index(from);
    let goal = grid.index(to);
    if start == goal {
        return Some(vec![from]);
    }
    let mut g_cost = vec![f32::INFINITY; n];
    let mut parent = vec![usize::MAX; n];
    let mut closed = vec![false; n];
    let mut heap = BinaryHeap::new();
    let mut counter = 0u64;
    let h = |idx: usize| -> f32 {
        let c = grid.coord(idx);
        (c.gx.abs_diff(to.gx) + c.gy.abs_diff(to.gy)) as f32
    };
    g_cost[start] = 0.0;
    heap.push(HeapEntry { f: h(start), counter, node: start });
    while let Some(HeapEntry { node, .. }) = heap.pop() {
        if closed[node] {
            continue;
        }
        closed[node] = true;
        if node == goal {
            // reconstruct
            let mut path = Vec::new();
            let mut cur = goal;
            while cur != usize::MAX {
                path.push(grid.coord(cur));
                cur = parent[cur];
            }
            path.reverse();
            return Some(path);
        }
        let cur_coord = grid.coord(node);
        for nb in grid.neighbors(cur_coord) {
            let nb_idx = grid.index(nb);
            if closed[nb_idx] {
                continue;
            }
            let (dir, x, y) = EdgeField::edge_between(cur_coord, nb);
            let step = model.edge_cost_at(dir, x, y, usage, capacity, history);
            let cand = g_cost[node] + step;
            if cand < g_cost[nb_idx] {
                g_cost[nb_idx] = cand;
                parent[nb_idx] = node;
                counter += 1;
                heap.push(HeapEntry { f: cand + h(nb_idx), counter, node: nb_idx });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_netlist::Rect;

    fn c(gx: u32, gy: u32) -> GcellCoord {
        GcellCoord { gx, gy }
    }

    fn grid8() -> GcellGrid {
        GcellGrid::new(Rect::new(0.0, 0.0, 8.0, 8.0), 8, 8)
    }

    fn route_free(from: GcellCoord, to: GcellCoord) -> Vec<GcellCoord> {
        let g = grid8();
        let usage = EdgeField::zeros(&g);
        let cap = EdgeField::constant(&g, 10.0, 10.0);
        let hist = EdgeField::zeros(&g);
        maze_route(&g, from, to, &usage, &cap, &hist, &CostModel::default()).unwrap()
    }

    #[test]
    fn shortest_path_on_free_grid() {
        let p = route_free(c(0, 0), c(5, 3));
        assert_eq!(p.len(), 9); // manhattan 8 + 1
        assert_eq!(*p.first().unwrap(), c(0, 0));
        assert_eq!(*p.last().unwrap(), c(5, 3));
    }

    #[test]
    fn trivial_route_same_cell() {
        assert_eq!(route_free(c(2, 2), c(2, 2)), vec![c(2, 2)]);
    }

    #[test]
    fn path_steps_are_adjacent() {
        let p = route_free(c(7, 0), c(0, 7));
        for w in p.windows(2) {
            assert_eq!(w[0].gx.abs_diff(w[1].gx) + w[0].gy.abs_diff(w[1].gy), 1);
        }
    }

    #[test]
    fn detours_around_congestion_wall() {
        let g = grid8();
        let mut usage = EdgeField::zeros(&g);
        let cap = EdgeField::constant(&g, 1.0, 1.0);
        let hist = EdgeField::zeros(&g);
        // build a vertical wall of congested h-edges at x=3 for rows 0..6
        for y in 0..6 {
            *usage.h_mut(3, y) = 50.0;
        }
        let model = CostModel { overflow_penalty: 10.0, pressure: 0.0 };
        let p = maze_route(&g, c(0, 0), c(7, 0), &usage, &cap, &hist, &model).unwrap();
        // the path must cross x=3..4 at row >= 6 where the wall is open
        let crossing = p
            .windows(2)
            .find(|w| w[0].gx == 3 && w[1].gx == 4)
            .expect("must cross the wall column somewhere");
        assert!(crossing[0].gy >= 6, "crossed through the wall at {crossing:?}");
        assert!(p.len() > 9); // longer than manhattan+1 because of detour
    }

    #[test]
    fn maze_route_is_deterministic() {
        let g = grid8();
        let usage = EdgeField::zeros(&g);
        let cap = EdgeField::constant(&g, 10.0, 10.0);
        let hist = EdgeField::zeros(&g);
        let m = CostModel::default();
        let a = maze_route(&g, c(1, 1), c(6, 6), &usage, &cap, &hist, &m).unwrap();
        let b = maze_route(&g, c(1, 1), c(6, 6), &usage, &cap, &hist, &m).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn history_steers_away() {
        let g = grid8();
        let usage = EdgeField::zeros(&g);
        let cap = EdgeField::constant(&g, 10.0, 10.0);
        let mut hist = EdgeField::zeros(&g);
        // historical congestion along row 0
        for x in 0..7 {
            *hist.h_mut(x, 0) = 20.0;
        }
        let m = CostModel::default();
        let p = maze_route(&g, c(0, 0), c(7, 0), &usage, &cap, &hist, &m).unwrap();
        // path should leave row 0 rather than pay history
        assert!(p.iter().any(|cc| cc.gy > 0));
    }
}
