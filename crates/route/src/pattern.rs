//! Pattern routing: L- and Z-shaped candidate paths for 2-pin segments.
//!
//! The initial routing pass of the global router evaluates every L-shape
//! (one bend) and Z-shape (two bends) between the segment endpoints under
//! the congestion cost model and commits the cheapest. This mirrors the
//! pattern-routing stage of NCTU-GR before maze fallback.

use vlsi_netlist::GcellCoord;

use crate::cost::CostModel;
use crate::decompose::Segment;
use crate::maps::EdgeField;

fn push_straight(path: &mut Vec<GcellCoord>, from: GcellCoord, to: GcellCoord) {
    // walk one axis; `from` is assumed already present in `path`
    if from.gx == to.gx {
        let x = from.gx;
        if to.gy >= from.gy {
            for gy in from.gy + 1..=to.gy {
                path.push(GcellCoord { gx: x, gy });
            }
        } else {
            for gy in (to.gy..from.gy).rev() {
                path.push(GcellCoord { gx: x, gy });
            }
        }
    } else {
        debug_assert_eq!(from.gy, to.gy, "push_straight requires an axis-aligned pair");
        let y = from.gy;
        if to.gx >= from.gx {
            for gx in from.gx + 1..=to.gx {
                path.push(GcellCoord { gx, gy: y });
            }
        } else {
            for gx in (to.gx..from.gx).rev() {
                path.push(GcellCoord { gx, gy: y });
            }
        }
    }
}

/// Builds the monotone staircase path visiting the given bend points.
/// `bends` must alternate axis-aligned moves.
fn build_path(points: &[GcellCoord]) -> Vec<GcellCoord> {
    let mut path = vec![points[0]];
    for w in points.windows(2) {
        push_straight(&mut path, w[0], w[1]);
    }
    path
}

/// Enumerates candidate pattern paths for a segment: both L-shapes plus
/// every Z-shape with the intermediate leg at each column/row strictly
/// between the endpoints. Degenerate (straight) segments yield one path.
pub fn candidate_paths(seg: &Segment) -> Vec<Vec<GcellCoord>> {
    let (a, b) = (seg.from, seg.to);
    if a == b {
        return vec![vec![a]];
    }
    if a.gx == b.gx || a.gy == b.gy {
        return vec![build_path(&[a, b])];
    }
    let mut out = Vec::new();
    // L-shapes
    out.push(build_path(&[a, GcellCoord { gx: b.gx, gy: a.gy }, b]));
    out.push(build_path(&[a, GcellCoord { gx: a.gx, gy: b.gy }, b]));
    // Z-shapes: horizontal-vertical-horizontal with bend at column mx
    let (x_lo, x_hi) = (a.gx.min(b.gx), a.gx.max(b.gx));
    for mx in x_lo + 1..x_hi {
        out.push(build_path(&[
            a,
            GcellCoord { gx: mx, gy: a.gy },
            GcellCoord { gx: mx, gy: b.gy },
            b,
        ]));
    }
    // Z-shapes: vertical-horizontal-vertical with bend at row my
    let (y_lo, y_hi) = (a.gy.min(b.gy), a.gy.max(b.gy));
    for my in y_lo + 1..y_hi {
        out.push(build_path(&[
            a,
            GcellCoord { gx: a.gx, gy: my },
            GcellCoord { gx: b.gx, gy: my },
            b,
        ]));
    }
    out
}

/// Routes a segment with pattern routing: returns the cheapest candidate
/// path under the cost model (deterministic: first minimum wins).
pub fn pattern_route(
    seg: &Segment,
    usage: &EdgeField,
    capacity: &EdgeField,
    history: &EdgeField,
    model: &CostModel,
) -> Vec<GcellCoord> {
    let candidates = candidate_paths(seg);
    let mut best = 0usize;
    let mut best_cost = f32::INFINITY;
    for (i, path) in candidates.iter().enumerate() {
        let cost = model.path_cost(path, usage, capacity, history);
        if cost < best_cost {
            best_cost = cost;
            best = i;
        }
    }
    candidates.into_iter().nth(best).expect("at least one candidate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_netlist::{GcellGrid, Rect};

    fn c(gx: u32, gy: u32) -> GcellCoord {
        GcellCoord { gx, gy }
    }

    fn grid() -> GcellGrid {
        GcellGrid::new(Rect::new(0.0, 0.0, 8.0, 8.0), 8, 8)
    }

    fn assert_valid_path(path: &[GcellCoord], from: GcellCoord, to: GcellCoord) {
        assert_eq!(*path.first().unwrap(), from);
        assert_eq!(*path.last().unwrap(), to);
        for w in path.windows(2) {
            let d = w[0].gx.abs_diff(w[1].gx) + w[0].gy.abs_diff(w[1].gy);
            assert_eq!(d, 1, "non-adjacent step {w:?}");
        }
    }

    #[test]
    fn straight_segment_has_single_candidate() {
        let seg = Segment { from: c(1, 1), to: c(5, 1) };
        let cands = candidate_paths(&seg);
        assert_eq!(cands.len(), 1);
        assert_valid_path(&cands[0], seg.from, seg.to);
        assert_eq!(cands[0].len(), 5);
    }

    #[test]
    fn degenerate_segment() {
        let seg = Segment { from: c(2, 2), to: c(2, 2) };
        assert_eq!(candidate_paths(&seg), vec![vec![c(2, 2)]]);
    }

    #[test]
    fn diagonal_candidates_count_and_validity() {
        let seg = Segment { from: c(1, 1), to: c(4, 3) };
        let cands = candidate_paths(&seg);
        // 2 L + (dx-1)=2 Z-hvh + (dy-1)=1 Z-vhv
        assert_eq!(cands.len(), 5);
        for p in &cands {
            assert_valid_path(p, seg.from, seg.to);
            // all pattern paths are monotone => minimal length
            assert_eq!(p.len() as u32, seg.manhattan_len() + 1);
        }
    }

    #[test]
    fn reversed_endpoints_also_work() {
        let seg = Segment { from: c(4, 3), to: c(1, 1) };
        for p in candidate_paths(&seg) {
            assert_valid_path(&p, seg.from, seg.to);
        }
    }

    #[test]
    fn pattern_route_avoids_congested_l() {
        let g = grid();
        let seg = Segment { from: c(0, 0), to: c(3, 3) };
        let mut usage = EdgeField::zeros(&g);
        let capacity = EdgeField::constant(&g, 1.0, 1.0);
        let history = EdgeField::zeros(&g);
        // congest the horizontal-first L (row 0)
        for x in 0..3 {
            *usage.h_mut(x, 0) = 5.0;
        }
        let path = pattern_route(&seg, &usage, &capacity, &history, &CostModel::default());
        assert_valid_path(&path, seg.from, seg.to);
        // must not start by walking along row 0 east
        assert_ne!(path[1], c(1, 0), "took the congested L");
    }

    #[test]
    fn pattern_route_is_deterministic() {
        let g = grid();
        let seg = Segment { from: c(0, 0), to: c(5, 5) };
        let usage = EdgeField::zeros(&g);
        let capacity = EdgeField::constant(&g, 10.0, 10.0);
        let history = EdgeField::zeros(&g);
        let m = CostModel::default();
        let a = pattern_route(&seg, &usage, &capacity, &history, &m);
        let b = pattern_route(&seg, &usage, &capacity, &history, &m);
        assert_eq!(a, b);
    }
}
