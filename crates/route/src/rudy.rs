//! RUDY: Rectangular Uniform wire DensitY estimation (Spindler & Johannes,
//! DATE 2007) — the fast congestion estimator the paper's introduction
//! contrasts with global routing, and one of the crafted features that
//! LH-graph message passing can recover (§3.2 of the paper).
//!
//! Each net spreads `wirelength / bbox-area` uniformly over its bounding
//! box; the horizontal component spreads `width / area`, the vertical
//! `height / area` (both measured in G-cell units so values are
//! track-comparable).

use vlsi_netlist::{Circuit, GcellGrid, Placement, Rect};

/// Per-G-cell RUDY maps (row-major `ny × nx`).
#[derive(Debug, Clone, PartialEq)]
pub struct RudyMaps {
    /// Grid columns.
    pub nx: usize,
    /// Grid rows.
    pub ny: usize,
    /// Combined RUDY.
    pub rudy: Vec<f32>,
    /// Horizontal component.
    pub rudy_h: Vec<f32>,
    /// Vertical component.
    pub rudy_v: Vec<f32>,
}

/// Computes RUDY maps for a placed circuit.
///
/// Nets whose pins collapse to a point contribute nothing (their bbox has
/// zero area and they occupy no routing track in the grid model).
pub fn rudy_maps(circuit: &Circuit, placement: &Placement, grid: &GcellGrid) -> RudyMaps {
    let (nx, ny) = (grid.nx() as usize, grid.ny() as usize);
    let mut rudy = vec![0.0f32; nx * ny];
    let mut rudy_h = vec![0.0f32; nx * ny];
    let mut rudy_v = vec![0.0f32; nx * ny];
    let gw = grid.gcell_width();
    let gh = grid.gcell_height();
    let gcell_area = gw * gh;

    for net in circuit.nets() {
        let bbox = placement.net_bbox(net);
        if bbox.is_empty() {
            continue;
        }
        // Expand degenerate boxes to at least one G-cell footprint so
        // straight nets still register density along their length.
        let bbox = Rect::new(
            bbox.lx,
            bbox.ly,
            bbox.ux.max(bbox.lx + f32::EPSILON),
            bbox.uy.max(bbox.ly + f32::EPSILON),
        );
        let w_g = (bbox.width() / gw).max(1.0); // span in g-cells, >= 1
        let h_g = (bbox.height() / gh).max(1.0);
        let area_g = w_g * h_g;
        let h_density = w_g / area_g; // horizontal wire per g-cell
        let v_density = h_g / area_g;
        let Some((lo, hi)) = grid.span(&bbox) else { continue };
        for cc in grid.iter_span(lo, hi) {
            let cell_rect = grid.gcell_rect(cc);
            let overlap = cell_rect.intersection(&bbox).map_or(0.0, |r| {
                // degenerate (zero-width/height) boxes still cover the
                // cells they run through: use fractional linear overlap
                let fx = if bbox.width() > 0.0 { r.width() / cell_rect.width() } else { 1.0 };
                let fy = if bbox.height() > 0.0 { r.height() / cell_rect.height() } else { 1.0 };
                let _ = gcell_area;
                fx * fy
            });
            if overlap <= 0.0 {
                continue;
            }
            let idx = grid.index(cc);
            rudy_h[idx] += h_density * overlap;
            rudy_v[idx] += v_density * overlap;
            rudy[idx] += (h_density + v_density) * overlap;
        }
    }
    RudyMaps { nx, ny, rudy, rudy_h, rudy_v }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_netlist::{Cell, CellId, Net, Pin, Point};

    fn line_net_setup(ax: f32, ay: f32, bx: f32, by: f32) -> (Circuit, Placement, GcellGrid) {
        let die = Rect::new(0.0, 0.0, 8.0, 8.0);
        let grid = GcellGrid::new(die, 8, 8);
        let mut c = Circuit::new("r", die);
        let a = c.add_cell(Cell::movable("a", 0.1, 0.1));
        let b = c.add_cell(Cell::movable("b", 0.1, 0.1));
        c.add_net(Net::new("n", vec![Pin::at_center(a), Pin::at_center(b)]));
        let mut p = Placement::zeroed(2);
        p.set_position(CellId(0), Point::new(ax, ay));
        p.set_position(CellId(1), Point::new(bx, by));
        (c, p, grid)
    }

    #[test]
    fn horizontal_net_contributes_mostly_horizontal_rudy() {
        let (c, p, grid) = line_net_setup(0.5, 4.5, 7.5, 4.5);
        let maps = rudy_maps(&c, &p, &grid);
        let h: f32 = maps.rudy_h.iter().sum();
        let v: f32 = maps.rudy_v.iter().sum();
        assert!(h > v, "h {h} vs v {v}");
        // cells along the row must be touched
        let idx = grid.index(vlsi_netlist::GcellCoord { gx: 4, gy: 4 });
        assert!(maps.rudy_h[idx] > 0.0);
    }

    #[test]
    fn vertical_net_contributes_mostly_vertical_rudy() {
        let (c, p, grid) = line_net_setup(4.5, 0.5, 4.5, 7.5);
        let maps = rudy_maps(&c, &p, &grid);
        assert!(maps.rudy_v.iter().sum::<f32>() > maps.rudy_h.iter().sum::<f32>());
    }

    #[test]
    fn point_net_contributes_nothing_outside_its_cell() {
        let (c, p, grid) = line_net_setup(4.5, 4.5, 4.5, 4.5);
        let maps = rudy_maps(&c, &p, &grid);
        let nonzero = maps.rudy.iter().filter(|&&v| v > 0.0).count();
        assert!(nonzero <= 1);
    }

    #[test]
    fn rudy_is_sum_of_components() {
        let (c, p, grid) = line_net_setup(0.5, 0.5, 7.5, 7.5);
        let maps = rudy_maps(&c, &p, &grid);
        for i in 0..maps.rudy.len() {
            assert!((maps.rudy[i] - (maps.rudy_h[i] + maps.rudy_v[i])).abs() < 1e-5);
        }
    }

    #[test]
    fn rudy_mass_conserves_wirelength_scale() {
        // a full-die diagonal net: total h-RUDY ≈ its g-cell width
        let (c, p, grid) = line_net_setup(0.1, 0.1, 7.9, 7.9);
        let maps = rudy_maps(&c, &p, &grid);
        let total_h: f32 = maps.rudy_h.iter().sum();
        // bbox ~ 8x8 gcells: h density = 8/64 per cell over ~64 cells ≈ 8
        assert!((total_h - 7.8).abs() < 1.0, "total_h = {total_h}");
    }

    #[test]
    fn empty_circuit_gives_zero_maps() {
        let die = Rect::new(0.0, 0.0, 4.0, 4.0);
        let grid = GcellGrid::new(die, 4, 4);
        let c = Circuit::new("empty", die);
        let p = Placement::zeroed(0);
        let maps = rudy_maps(&c, &p, &grid);
        assert!(maps.rudy.iter().all(|&v| v == 0.0));
    }
}
