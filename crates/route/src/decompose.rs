//! Net decomposition: pins → G-cell terminals → 2-pin segments.
//!
//! Multi-pin nets are decomposed with a rectilinear Prim MST over the
//! distinct G-cells containing pins, the standard topology-generation step
//! before pattern/maze routing in global routers.

use vlsi_netlist::{GcellCoord, GcellGrid, Net, Placement};

/// A 2-pin routing task between two G-cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// Source G-cell.
    pub from: GcellCoord,
    /// Destination G-cell.
    pub to: GcellCoord,
}

impl Segment {
    /// Manhattan length in G-cells.
    pub fn manhattan_len(&self) -> u32 {
        self.from.gx.abs_diff(self.to.gx) + self.from.gy.abs_diff(self.to.gy)
    }
}

/// The distinct G-cells containing the net's pins, in deterministic
/// (sorted) order.
pub fn net_terminals(net: &Net, placement: &Placement, grid: &GcellGrid) -> Vec<GcellCoord> {
    let mut cells: Vec<GcellCoord> =
        net.pins.iter().map(|pin| grid.locate(placement.pin_position(pin))).collect();
    cells.sort_unstable_by_key(|c| (c.gy, c.gx));
    cells.dedup();
    cells
}

fn manhattan(a: GcellCoord, b: GcellCoord) -> u32 {
    a.gx.abs_diff(b.gx) + a.gy.abs_diff(b.gy)
}

/// Builds the rectilinear MST over `terminals` with Prim's algorithm.
///
/// Returns one [`Segment`] per MST edge (empty for fewer than 2
/// terminals). Deterministic: ties are broken by terminal order.
pub fn mst_segments(terminals: &[GcellCoord]) -> Vec<Segment> {
    let n = terminals.len();
    if n < 2 {
        return Vec::new();
    }
    let mut in_tree = vec![false; n];
    let mut best_dist = vec![u32::MAX; n];
    let mut best_parent = vec![0usize; n];
    in_tree[0] = true;
    for i in 1..n {
        best_dist[i] = manhattan(terminals[0], terminals[i]);
    }
    let mut segments = Vec::with_capacity(n - 1);
    for _ in 1..n {
        // pick the closest out-of-tree terminal (lowest index on ties)
        let mut pick = usize::MAX;
        let mut pick_dist = u32::MAX;
        for i in 0..n {
            if !in_tree[i] && best_dist[i] < pick_dist {
                pick = i;
                pick_dist = best_dist[i];
            }
        }
        debug_assert!(pick != usize::MAX, "disconnected prim state");
        in_tree[pick] = true;
        segments.push(Segment { from: terminals[best_parent[pick]], to: terminals[pick] });
        for i in 0..n {
            if !in_tree[i] {
                let d = manhattan(terminals[pick], terminals[i]);
                if d < best_dist[i] {
                    best_dist[i] = d;
                    best_parent[i] = pick;
                }
            }
        }
    }
    segments
}

/// Convenience: terminals + MST in one call.
pub fn decompose_net(net: &Net, placement: &Placement, grid: &GcellGrid) -> Vec<Segment> {
    mst_segments(&net_terminals(net, placement, grid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_netlist::{Cell, Circuit, Pin, Point, Rect};

    fn c(gx: u32, gy: u32) -> GcellCoord {
        GcellCoord { gx, gy }
    }

    #[test]
    fn mst_on_two_points_is_one_segment() {
        let segs = mst_segments(&[c(0, 0), c(3, 4)]);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].manhattan_len(), 7);
    }

    #[test]
    fn mst_length_is_minimal_on_collinear_points() {
        // Points on a line: MST total = span
        let segs = mst_segments(&[c(0, 0), c(5, 0), c(2, 0), c(9, 0)]);
        let total: u32 = segs.iter().map(Segment::manhattan_len).sum();
        assert_eq!(total, 9);
        assert_eq!(segs.len(), 3);
    }

    #[test]
    fn mst_star_shape() {
        // centre + 4 arms: MST connects each arm to the centre
        let pts = [c(5, 5), c(5, 9), c(5, 1), c(1, 5), c(9, 5)];
        let segs = mst_segments(&pts);
        let total: u32 = segs.iter().map(Segment::manhattan_len).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn mst_is_empty_for_trivial_inputs() {
        assert!(mst_segments(&[]).is_empty());
        assert!(mst_segments(&[c(2, 2)]).is_empty());
    }

    #[test]
    fn terminals_dedup_same_gcell_pins() {
        let die = Rect::new(0.0, 0.0, 8.0, 8.0);
        let grid = GcellGrid::new(die, 4, 4);
        let mut circuit = Circuit::new("t", die);
        let a = circuit.add_cell(Cell::movable("a", 0.5, 0.5));
        let b = circuit.add_cell(Cell::movable("b", 0.5, 0.5));
        let net = Net::new("n", vec![Pin::at_center(a), Pin::at_center(b)]);
        let mut p = Placement::zeroed(2);
        // both cells in g-cell (0,0)
        p.set_position(a, Point::new(0.5, 0.5));
        p.set_position(b, Point::new(1.5, 1.5));
        let t = net_terminals(&net, &p, &grid);
        assert_eq!(t, vec![c(0, 0)]);
        assert!(decompose_net(&net, &p, &grid).is_empty());
    }

    #[test]
    fn decompose_spans_distinct_gcells() {
        let die = Rect::new(0.0, 0.0, 8.0, 8.0);
        let grid = GcellGrid::new(die, 4, 4);
        let mut circuit = Circuit::new("t", die);
        let a = circuit.add_cell(Cell::movable("a", 0.5, 0.5));
        let b = circuit.add_cell(Cell::movable("b", 0.5, 0.5));
        let d = circuit.add_cell(Cell::movable("d", 0.5, 0.5));
        let net = Net::new("n", vec![Pin::at_center(a), Pin::at_center(b), Pin::at_center(d)]);
        let mut p = Placement::zeroed(3);
        p.set_position(a, Point::new(1.0, 1.0)); // (0,0)
        p.set_position(b, Point::new(7.0, 1.0)); // (3,0)
        p.set_position(d, Point::new(7.0, 7.0)); // (3,3)
        let segs = decompose_net(&net, &p, &grid);
        assert_eq!(segs.len(), 2);
        let total: u32 = segs.iter().map(Segment::manhattan_len).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn mst_is_deterministic() {
        let pts = [c(0, 0), c(2, 2), c(4, 0), c(2, 0)];
        assert_eq!(mst_segments(&pts), mst_segments(&pts));
    }
}
