//! Edge-capacity model and demand/congestion maps.
//!
//! The routing resource model is the standard global-routing grid graph:
//! each pair of horizontally adjacent G-cells is joined by a *horizontal
//! edge* (consuming horizontal tracks), each vertically adjacent pair by a
//! *vertical edge*. Wires crossing an edge consume one track of demand.
//!
//! The paper's labels are per-G-cell horizontal/vertical routing-demand
//! maps and their thresholded congestion masks; [`EdgeField::to_gcell_map`]
//! projects edge quantities onto G-cells by averaging a cell's incident
//! edges in the respective direction (boundary cells have one incident
//! edge).

use vlsi_netlist::{GcellCoord, GcellGrid};

/// Direction of a routing edge / demand channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Horizontal (east-west wires crossing vertical G-cell boundaries).
    H,
    /// Vertical (north-south wires crossing horizontal G-cell boundaries).
    V,
}

/// A scalar value per routing edge, separately for both directions.
///
/// Horizontal edges are indexed by `(x, y)` with `x ∈ 0..nx-1`, `y ∈ 0..ny`
/// and join G-cells `(x, y)` and `(x+1, y)`. Vertical edges are indexed by
/// `(x, y)` with `x ∈ 0..nx`, `y ∈ 0..ny-1` and join `(x, y)`/`(x, y+1)`.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeField {
    nx: usize,
    ny: usize,
    h: Vec<f32>,
    v: Vec<f32>,
}

impl EdgeField {
    /// Creates a zero field over the grid.
    pub fn zeros(grid: &GcellGrid) -> Self {
        let (nx, ny) = (grid.nx() as usize, grid.ny() as usize);
        Self { nx, ny, h: vec![0.0; (nx - 1) * ny], v: vec![0.0; nx * (ny - 1)] }
    }

    /// Creates a constant field over the grid.
    pub fn constant(grid: &GcellGrid, h_value: f32, v_value: f32) -> Self {
        let mut f = Self::zeros(grid);
        f.h.iter_mut().for_each(|x| *x = h_value);
        f.v.iter_mut().for_each(|x| *x = v_value);
        f
    }

    /// Grid columns.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid rows.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Number of edges in a direction.
    pub fn num_edges(&self, dir: Dir) -> usize {
        match dir {
            Dir::H => self.h.len(),
            Dir::V => self.v.len(),
        }
    }

    fn h_idx(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.nx - 1 && y < self.ny, "h edge ({x},{y}) out of range");
        y * (self.nx - 1) + x
    }

    fn v_idx(&self, x: usize, y: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny - 1, "v edge ({x},{y}) out of range");
        y * self.nx + x
    }

    /// Value of the horizontal edge joining `(x, y)` and `(x+1, y)`.
    pub fn h(&self, x: usize, y: usize) -> f32 {
        self.h[self.h_idx(x, y)]
    }

    /// Value of the vertical edge joining `(x, y)` and `(x, y+1)`.
    pub fn v(&self, x: usize, y: usize) -> f32 {
        self.v[self.v_idx(x, y)]
    }

    /// Mutable horizontal edge value.
    pub fn h_mut(&mut self, x: usize, y: usize) -> &mut f32 {
        let i = self.h_idx(x, y);
        &mut self.h[i]
    }

    /// Mutable vertical edge value.
    pub fn v_mut(&mut self, x: usize, y: usize) -> &mut f32 {
        let i = self.v_idx(x, y);
        &mut self.v[i]
    }

    /// The edge between two adjacent G-cells, as `(direction, x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the cells are not 4-adjacent.
    pub fn edge_between(a: GcellCoord, b: GcellCoord) -> (Dir, usize, usize) {
        let dx = b.gx as i64 - a.gx as i64;
        let dy = b.gy as i64 - a.gy as i64;
        match (dx, dy) {
            (1, 0) => (Dir::H, a.gx as usize, a.gy as usize),
            (-1, 0) => (Dir::H, b.gx as usize, b.gy as usize),
            (0, 1) => (Dir::V, a.gx as usize, a.gy as usize),
            (0, -1) => (Dir::V, b.gx as usize, b.gy as usize),
            _ => panic!("g-cells {a:?} and {b:?} are not adjacent"),
        }
    }

    /// Value of the edge addressed by [`EdgeField::edge_between`].
    pub fn get(&self, dir: Dir, x: usize, y: usize) -> f32 {
        match dir {
            Dir::H => self.h(x, y),
            Dir::V => self.v(x, y),
        }
    }

    /// Mutable value of the edge addressed by [`EdgeField::edge_between`].
    pub fn get_mut(&mut self, dir: Dir, x: usize, y: usize) -> &mut f32 {
        match dir {
            Dir::H => self.h_mut(x, y),
            Dir::V => self.v_mut(x, y),
        }
    }

    /// Adds `delta` along a G-cell path (consecutive cells must be
    /// adjacent).
    ///
    /// # Panics
    ///
    /// Panics if consecutive path cells are not adjacent.
    pub fn add_path(&mut self, path: &[GcellCoord], delta: f32) {
        for w in path.windows(2) {
            let (dir, x, y) = Self::edge_between(w[0], w[1]);
            *self.get_mut(dir, x, y) += delta;
        }
    }

    /// Sum of all edge values in a direction.
    pub fn total(&self, dir: Dir) -> f32 {
        match dir {
            Dir::H => self.h.iter().sum(),
            Dir::V => self.v.iter().sum(),
        }
    }

    /// Number of edges where `self > other` (e.g. demand over capacity).
    pub fn count_exceeding(&self, other: &EdgeField) -> usize {
        assert_eq!((self.nx, self.ny), (other.nx, other.ny), "grid mismatch");
        self.h.iter().zip(&other.h).filter(|(a, b)| a > b).count()
            + self.v.iter().zip(&other.v).filter(|(a, b)| a > b).count()
    }

    /// Total overflow `Σ max(0, self - other)` over both directions.
    pub fn total_overflow(&self, other: &EdgeField) -> f32 {
        assert_eq!((self.nx, self.ny), (other.nx, other.ny), "grid mismatch");
        self.h.iter().zip(&other.h).map(|(a, b)| (a - b).max(0.0)).sum::<f32>()
            + self.v.iter().zip(&other.v).map(|(a, b)| (a - b).max(0.0)).sum::<f32>()
    }

    /// Projects the field onto G-cells: per cell, the mean over its
    /// incident edges in the given direction (1 edge on the boundary, 2
    /// inside). Returns a row-major `ny × nx` vector.
    pub fn to_gcell_map(&self, dir: Dir) -> Vec<f32> {
        let mut out = vec![0.0f32; self.nx * self.ny];
        match dir {
            Dir::H => {
                for y in 0..self.ny {
                    for x in 0..self.nx {
                        let mut acc = 0.0;
                        let mut cnt = 0.0;
                        if x > 0 {
                            acc += self.h(x - 1, y);
                            cnt += 1.0;
                        }
                        if x + 1 < self.nx {
                            acc += self.h(x, y);
                            cnt += 1.0;
                        }
                        out[y * self.nx + x] = if cnt > 0.0 { acc / cnt } else { 0.0 };
                    }
                }
            }
            Dir::V => {
                for y in 0..self.ny {
                    for x in 0..self.nx {
                        let mut acc = 0.0;
                        let mut cnt = 0.0;
                        if y > 0 {
                            acc += self.v(x, y - 1);
                            cnt += 1.0;
                        }
                        if y + 1 < self.ny {
                            acc += self.v(x, y);
                            cnt += 1.0;
                        }
                        out[y * self.nx + x] = if cnt > 0.0 { acc / cnt } else { 0.0 };
                    }
                }
            }
        }
        out
    }
}

/// The per-G-cell label maps the models learn from: demand (regression
/// target, Eq. 4) and congestion (classification target, Eq. 5).
#[derive(Debug, Clone, PartialEq)]
pub struct LabelMaps {
    /// Grid columns.
    pub nx: usize,
    /// Grid rows.
    pub ny: usize,
    /// Horizontal routing demand per G-cell (row-major).
    pub demand_h: Vec<f32>,
    /// Vertical routing demand per G-cell (row-major).
    pub demand_v: Vec<f32>,
    /// Horizontal capacity per G-cell (row-major).
    pub capacity_h: Vec<f32>,
    /// Vertical capacity per G-cell (row-major).
    pub capacity_v: Vec<f32>,
}

impl LabelMaps {
    /// Binary congestion mask for a direction: demand > capacity.
    pub fn congestion(&self, dir: Dir) -> Vec<bool> {
        let (d, c) = match dir {
            Dir::H => (&self.demand_h, &self.capacity_h),
            Dir::V => (&self.demand_v, &self.capacity_v),
        };
        d.iter().zip(c).map(|(d, c)| d > c).collect()
    }

    /// Fraction of G-cells congested in a direction.
    pub fn congestion_rate(&self, dir: Dir) -> f64 {
        let mask = self.congestion(dir);
        if mask.is_empty() {
            0.0
        } else {
            mask.iter().filter(|&&b| b).count() as f64 / mask.len() as f64
        }
    }

    /// Demand normalised by capacity (the scale-free regression target;
    /// 1.0 = exactly at capacity). Zero-capacity cells map to demand
    /// itself (fully blocked cell).
    pub fn utilization(&self, dir: Dir) -> Vec<f32> {
        let (d, c) = match dir {
            Dir::H => (&self.demand_h, &self.capacity_h),
            Dir::V => (&self.demand_v, &self.capacity_v),
        };
        d.iter().zip(c).map(|(d, c)| if *c > 0.0 { d / c } else { *d }).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_netlist::Rect;

    fn grid3() -> GcellGrid {
        GcellGrid::new(Rect::new(0.0, 0.0, 3.0, 3.0), 3, 3)
    }

    #[test]
    fn edge_counts() {
        let f = EdgeField::zeros(&grid3());
        assert_eq!(f.num_edges(Dir::H), 6); // 2 per row * 3 rows
        assert_eq!(f.num_edges(Dir::V), 6);
    }

    #[test]
    fn edge_between_all_orientations() {
        let a = GcellCoord { gx: 1, gy: 1 };
        assert_eq!(EdgeField::edge_between(a, GcellCoord { gx: 2, gy: 1 }), (Dir::H, 1, 1));
        assert_eq!(EdgeField::edge_between(a, GcellCoord { gx: 0, gy: 1 }), (Dir::H, 0, 1));
        assert_eq!(EdgeField::edge_between(a, GcellCoord { gx: 1, gy: 2 }), (Dir::V, 1, 1));
        assert_eq!(EdgeField::edge_between(a, GcellCoord { gx: 1, gy: 0 }), (Dir::V, 1, 0));
    }

    #[test]
    #[should_panic(expected = "not adjacent")]
    fn edge_between_rejects_diagonal() {
        EdgeField::edge_between(GcellCoord { gx: 0, gy: 0 }, GcellCoord { gx: 1, gy: 1 });
    }

    #[test]
    fn add_path_accumulates_on_edges() {
        let mut f = EdgeField::zeros(&grid3());
        let path = [
            GcellCoord { gx: 0, gy: 0 },
            GcellCoord { gx: 1, gy: 0 },
            GcellCoord { gx: 1, gy: 1 },
            GcellCoord { gx: 2, gy: 1 },
        ];
        f.add_path(&path, 1.0);
        assert_eq!(f.h(0, 0), 1.0);
        assert_eq!(f.v(1, 0), 1.0);
        assert_eq!(f.h(1, 1), 1.0);
        assert_eq!(f.total(Dir::H), 2.0);
        assert_eq!(f.total(Dir::V), 1.0);
    }

    #[test]
    fn overflow_and_exceeding_counts() {
        let g = grid3();
        let mut demand = EdgeField::zeros(&g);
        let capacity = EdgeField::constant(&g, 1.0, 1.0);
        *demand.h_mut(0, 0) = 3.0; // overflow 2
        *demand.v_mut(0, 0) = 0.5; // under capacity
        assert_eq!(demand.count_exceeding(&capacity), 1);
        assert!((demand.total_overflow(&capacity) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn gcell_projection_averages_incident_edges() {
        let g = grid3();
        let mut f = EdgeField::zeros(&g);
        *f.h_mut(0, 0) = 2.0; // edge (0,0)-(1,0)
        *f.h_mut(1, 0) = 4.0; // edge (1,0)-(2,0)
        let m = f.to_gcell_map(Dir::H);
        assert_eq!(m[0], 2.0); // boundary cell: single incident edge
        assert_eq!(m[1], 3.0); // interior: mean of 2 and 4
        assert_eq!(m[2], 4.0);
        assert_eq!(m[3], 0.0); // other row untouched
    }

    #[test]
    fn label_maps_congestion_rate() {
        let maps = LabelMaps {
            nx: 2,
            ny: 1,
            demand_h: vec![2.0, 0.5],
            demand_v: vec![0.0, 0.0],
            capacity_h: vec![1.0, 1.0],
            capacity_v: vec![1.0, 1.0],
        };
        assert_eq!(maps.congestion(Dir::H), vec![true, false]);
        assert!((maps.congestion_rate(Dir::H) - 0.5).abs() < 1e-12);
        assert_eq!(maps.congestion_rate(Dir::V), 0.0);
        assert_eq!(maps.utilization(Dir::H), vec![2.0, 0.5]);
    }

    #[test]
    fn utilization_handles_zero_capacity() {
        let maps = LabelMaps {
            nx: 1,
            ny: 1,
            demand_h: vec![3.0],
            demand_v: vec![0.0],
            capacity_h: vec![0.0],
            capacity_v: vec![1.0],
        };
        assert_eq!(maps.utilization(Dir::H), vec![3.0]);
    }
}
