//! `vlsi-route` — grid global routing and congestion-label generation.
//!
//! The paper obtains ground-truth horizontal/vertical routing-demand maps
//! from NCTU-GR 2.0 and thresholds them against capacity into congestion
//! masks. This crate is the stand-in (see DESIGN.md):
//!
//! * [`maps`] — the edge-based routing-resource model and per-G-cell
//!   label maps,
//! * [`capacity`] — track capacities with macro blockages,
//! * [`decompose`] — MST net decomposition into 2-pin segments,
//! * [`pattern`] / [`maze`] — L/Z pattern routing and A* maze fallback,
//! * [`router`] — the PathFinder-style negotiation loop,
//! * [`rudy`] — the RUDY fast estimator (baseline feature).
//!
//! # Example
//!
//! ```
//! use vlsi_netlist::synth::{generate, SynthConfig};
//! use vlsi_place::GlobalPlacer;
//! use vlsi_route::{route, RouterConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = SynthConfig { n_cells: 150, grid_nx: 8, grid_ny: 8, ..SynthConfig::default() };
//! let synth = generate(&cfg)?;
//! let grid = cfg.grid();
//! let placed = GlobalPlacer::default().place_synth(&synth, &grid)?;
//! let routed = route(&synth.circuit, &placed.placement, &grid,
//!                    &synth.macro_rects, &RouterConfig::default())?;
//! assert!(routed.wirelength > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod capacity;
pub mod cost;
pub mod decompose;
pub mod error;
pub mod maps;
pub mod maze;
pub mod pattern;
pub mod router;
pub mod rudy;

pub use capacity::{build_capacity, CapacityConfig};
pub use cost::CostModel;
pub use decompose::{decompose_net, mst_segments, net_terminals, Segment};
pub use error::{Result, RouteError};
pub use maps::{Dir, EdgeField, LabelMaps};
pub use maze::maze_route;
pub use pattern::{candidate_paths, pattern_route};
pub use router::{route, RouteResult, RouterConfig};
pub use rudy::{rudy_maps, RudyMaps};
