//! The global router: pattern routing + negotiated rip-up-and-reroute.
//!
//! This is the NCTU-GR 2.0 stand-in that produces the paper's ground-truth
//! labels. The flow is the classic PathFinder negotiation:
//!
//! 1. decompose every net into MST segments ([`crate::decompose`]),
//! 2. pattern-route every segment in deterministic order
//!    ([`crate::pattern`]),
//! 3. repeat: find overflowed edges, bump their history cost, rip up the
//!    segments crossing them and maze-reroute ([`crate::maze`]) under the
//!    updated costs,
//! 4. project edge usage/capacity onto per-G-cell demand maps and
//!    threshold into congestion masks ([`crate::maps::LabelMaps`]).

use vlsi_netlist::{Circuit, GcellCoord, GcellGrid, Placement, Rect};

use crate::capacity::{build_capacity, CapacityConfig};
use crate::cost::CostModel;
use crate::decompose::{decompose_net, Segment};
use crate::error::{Result, RouteError};
use crate::maps::{Dir, EdgeField, LabelMaps};
use crate::maze::maze_route;
use crate::pattern::pattern_route;

/// Router configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterConfig {
    /// Capacity model (tracks + blockage factor).
    pub capacity: CapacityConfig,
    /// Congestion cost model.
    pub cost: CostModel,
    /// Rip-up-and-reroute rounds.
    pub rrr_rounds: usize,
    /// History increment added to each overflowed edge per round.
    pub history_increment: f32,
    /// Upper bound on segments maze-rerouted per round (runtime guard).
    pub max_reroutes_per_round: usize,
    /// Keep the final per-net paths in the result (enables
    /// [`RouteResult::net_paths`] and congestion attribution; costs
    /// memory proportional to total wirelength).
    pub keep_paths: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            capacity: CapacityConfig::default(),
            cost: CostModel::default(),
            rrr_rounds: 6,
            history_increment: 1.5,
            max_reroutes_per_round: 4000,
            keep_paths: false,
        }
    }
}

/// The routed state of one design.
#[derive(Debug, Clone)]
pub struct RouteResult {
    /// Final edge usage (demand).
    pub usage: EdgeField,
    /// Edge capacities (after blockages).
    pub capacity: EdgeField,
    /// History cost field after the final round (diagnostic).
    pub history: EdgeField,
    /// Per-G-cell demand/capacity label maps.
    pub labels: LabelMaps,
    /// Number of edges with demand above capacity.
    pub overflowed_edges: usize,
    /// Total overflow across edges.
    pub total_overflow: f32,
    /// Total routed wirelength in G-cell steps.
    pub wirelength: u64,
    /// Number of rip-up-and-reroute rounds actually executed.
    pub rounds_used: usize,
    /// Final routed paths per `(net id, segment)` — only populated with
    /// [`RouterConfig::keep_paths`].
    net_paths: Vec<(u32, Vec<GcellCoord>)>,
}

impl RouteResult {
    /// Congestion rate over both directions (fraction of G-cell/direction
    /// pairs congested) — the quantity reported in Table 1 of the paper.
    pub fn congestion_rate(&self) -> f64 {
        0.5 * (self.labels.congestion_rate(Dir::H) + self.labels.congestion_rate(Dir::V))
    }

    /// The routed paths of each segment, tagged with the owning net id.
    ///
    /// Empty unless the router ran with [`RouterConfig::keep_paths`].
    pub fn net_paths(&self) -> &[(u32, Vec<GcellCoord>)] {
        &self.net_paths
    }

    /// Congestion attribution: for every G-cell whose demand exceeds
    /// capacity in either direction, the ids of nets with wire crossing
    /// one of its overflowed edges — the candidates a placer would move
    /// or a router would detour.
    ///
    /// Returns `(g-cell index, contributing net ids)` pairs in ascending
    /// G-cell order. Requires [`RouterConfig::keep_paths`]; returns an
    /// empty vector otherwise.
    pub fn congestion_attribution(&self, grid: &GcellGrid) -> Vec<(usize, Vec<u32>)> {
        if self.net_paths.is_empty() {
            return Vec::new();
        }
        // overflowed edges -> contributing nets
        let mut per_cell: std::collections::BTreeMap<usize, Vec<u32>> =
            std::collections::BTreeMap::new();
        for (net, path) in &self.net_paths {
            for w in path.windows(2) {
                let (dir, x, y) = EdgeField::edge_between(w[0], w[1]);
                if self.usage.get(dir, x, y) > self.capacity.get(dir, x, y) {
                    for cc in [w[0], w[1]] {
                        per_cell.entry(grid.index(cc)).or_default().push(*net);
                    }
                }
            }
        }
        per_cell
            .into_iter()
            .map(|(cell, mut nets)| {
                nets.sort_unstable();
                nets.dedup();
                (cell, nets)
            })
            .collect()
    }
}

/// Routes a placed circuit.
///
/// `blockages` are macro outlines that reduce capacity (pass the
/// `macro_rects` of a synthetic design, or an empty slice).
///
/// # Errors
///
/// Returns [`RouteError::InvalidConfig`] for a degenerate configuration.
pub fn route(
    circuit: &Circuit,
    placement: &Placement,
    grid: &GcellGrid,
    blockages: &[Rect],
    cfg: &RouterConfig,
) -> Result<RouteResult> {
    if cfg.capacity.h_tracks <= 0.0 || cfg.capacity.v_tracks <= 0.0 {
        return Err(RouteError::InvalidConfig("track counts must be positive".into()));
    }
    let capacity = build_capacity(grid, blockages, &cfg.capacity);
    let mut usage = EdgeField::zeros(grid);
    let mut history = EdgeField::zeros(grid);

    // 1–2. decompose and pattern-route in deterministic net order.
    let mut segments: Vec<Segment> = Vec::new();
    let mut segment_net: Vec<u32> = Vec::new();
    for (ni, net) in circuit.nets().iter().enumerate() {
        let segs = decompose_net(net, placement, grid);
        segment_net.extend(std::iter::repeat_n(ni as u32, segs.len()));
        segments.extend(segs);
    }
    let mut paths: Vec<Vec<GcellCoord>> = Vec::with_capacity(segments.len());
    for seg in &segments {
        let path = pattern_route(seg, &usage, &capacity, &history, &cfg.cost);
        usage.add_path(&path, 1.0);
        paths.push(path);
    }

    // 3. negotiation rounds.
    let mut rounds_used = 0;
    for _ in 0..cfg.rrr_rounds {
        let over_now = usage.count_exceeding(&capacity);
        if over_now == 0 {
            break;
        }
        rounds_used += 1;
        // history bump on overflowed edges
        bump_history(&mut history, &usage, &capacity, cfg.history_increment);
        // collect offending segments (those crossing an overflowed edge)
        let mut victims: Vec<usize> = Vec::new();
        for (i, path) in paths.iter().enumerate() {
            if path_overflows(path, &usage, &capacity) {
                victims.push(i);
                if victims.len() >= cfg.max_reroutes_per_round {
                    break;
                }
            }
        }
        for &i in &victims {
            let old = std::mem::take(&mut paths[i]);
            usage.add_path(&old, -1.0);
            let seg = segments[i];
            let new = maze_route(grid, seg.from, seg.to, &usage, &capacity, &history, &cfg.cost)
                .unwrap_or(old);
            usage.add_path(&new, 1.0);
            paths[i] = new;
        }
    }

    // 4. labels.
    let labels = LabelMaps {
        nx: grid.nx() as usize,
        ny: grid.ny() as usize,
        demand_h: usage.to_gcell_map(Dir::H),
        demand_v: usage.to_gcell_map(Dir::V),
        capacity_h: capacity.to_gcell_map(Dir::H),
        capacity_v: capacity.to_gcell_map(Dir::V),
    };
    let overflowed_edges = usage.count_exceeding(&capacity);
    let total_overflow = usage.total_overflow(&capacity);
    let wirelength = paths.iter().map(|p| p.len().saturating_sub(1) as u64).sum();
    let net_paths =
        if cfg.keep_paths { segment_net.into_iter().zip(paths).collect() } else { Vec::new() };
    Ok(RouteResult {
        usage,
        capacity,
        history,
        labels,
        overflowed_edges,
        total_overflow,
        wirelength,
        rounds_used,
        net_paths,
    })
}

fn bump_history(history: &mut EdgeField, usage: &EdgeField, capacity: &EdgeField, inc: f32) {
    let (nx, ny) = (usage.nx(), usage.ny());
    for y in 0..ny {
        for x in 0..nx - 1 {
            if usage.h(x, y) > capacity.h(x, y) {
                *history.h_mut(x, y) += inc;
            }
        }
    }
    for y in 0..ny - 1 {
        for x in 0..nx {
            if usage.v(x, y) > capacity.v(x, y) {
                *history.v_mut(x, y) += inc;
            }
        }
    }
}

fn path_overflows(path: &[GcellCoord], usage: &EdgeField, capacity: &EdgeField) -> bool {
    path.windows(2).any(|w| {
        let (dir, x, y) = EdgeField::edge_between(w[0], w[1]);
        usage.get(dir, x, y) > capacity.get(dir, x, y)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_netlist::synth::{generate, SynthConfig};
    use vlsi_netlist::{Cell, Net, Pin, Point};
    use vlsi_place::GlobalPlacer;

    fn routed_synth(n_cells: usize, tracks: f32) -> RouteResult {
        let cfg = SynthConfig { n_cells, grid_nx: 16, grid_ny: 16, ..SynthConfig::default() };
        let synth = generate(&cfg).unwrap();
        let grid = cfg.grid();
        let placed = GlobalPlacer::default().place_synth(&synth, &grid).unwrap();
        let rcfg = RouterConfig {
            capacity: CapacityConfig { h_tracks: tracks, v_tracks: tracks, ..Default::default() },
            ..Default::default()
        };
        route(&synth.circuit, &placed.placement, &grid, &synth.macro_rects, &rcfg).unwrap()
    }

    #[test]
    fn routes_synthetic_design_with_positive_wirelength() {
        let r = routed_synth(300, 10.0);
        assert!(r.wirelength > 0);
        assert!(r.usage.total(Dir::H) > 0.0);
        assert!(r.usage.total(Dir::V) > 0.0);
    }

    #[test]
    fn demand_equals_wirelength() {
        // every path step adds exactly 1 unit on exactly one edge
        let r = routed_synth(300, 10.0);
        let total = r.usage.total(Dir::H) + r.usage.total(Dir::V);
        assert!((total - r.wirelength as f32).abs() < 1.0, "{total} vs {}", r.wirelength);
    }

    #[test]
    fn rrr_resolves_corridor_conflict() {
        // Three 2-pin nets share the same row corridor with capacity 1.
        // Pattern routing piles them onto the straight line; negotiation
        // must detour two of them through the free rows above and below,
        // eliminating all overflow.
        let die = Rect::new(0.0, 0.0, 5.0, 3.0);
        let grid = GcellGrid::new(die, 5, 3);
        let mut c = Circuit::new("corridor", die);
        let mut p = Placement::zeroed(6);
        for i in 0..3 {
            let a = c.add_cell(Cell::movable(format!("a{i}"), 0.1, 0.1));
            let b = c.add_cell(Cell::movable(format!("b{i}"), 0.1, 0.1));
            c.add_net(Net::new(format!("n{i}"), vec![Pin::at_center(a), Pin::at_center(b)]));
            p.set_position(a, Point::new(0.5, 1.5)); // gcell (0,1)
            p.set_position(b, Point::new(4.5, 1.5)); // gcell (4,1)
        }
        let tight = CapacityConfig { h_tracks: 1.0, v_tracks: 1.0, blockage_factor: 0.0 };
        let no_rrr = RouterConfig { capacity: tight.clone(), rrr_rounds: 0, ..Default::default() };
        let with_rrr = RouterConfig { capacity: tight, rrr_rounds: 8, ..Default::default() };
        let a = route(&c, &p, &grid, &[], &no_rrr).unwrap();
        let b = route(&c, &p, &grid, &[], &with_rrr).unwrap();
        assert!(a.total_overflow > 0.0, "setup must start overflowed");
        assert_eq!(b.total_overflow, 0.0, "negotiation failed to clear the corridor");
        assert!(b.rounds_used >= 1);
    }

    #[test]
    fn rrr_reduces_total_overflow_on_synthetic_design() {
        // PathFinder negotiation trades wirelength for overflow: total
        // overflow must drop (congestion may spread over more edges —
        // that is the intended spreading behaviour).
        let cfg = SynthConfig { n_cells: 400, grid_nx: 12, grid_ny: 12, ..SynthConfig::default() };
        let synth = generate(&cfg).unwrap();
        let grid = cfg.grid();
        let placed = GlobalPlacer::default().place_synth(&synth, &grid).unwrap();
        let caps = CapacityConfig { h_tracks: 12.0, v_tracks: 12.0, ..Default::default() };
        let no_rrr = RouterConfig { capacity: caps.clone(), rrr_rounds: 0, ..Default::default() };
        let with_rrr = RouterConfig { capacity: caps, rrr_rounds: 8, ..Default::default() };
        let a =
            route(&synth.circuit, &placed.placement, &grid, &synth.macro_rects, &no_rrr).unwrap();
        let b =
            route(&synth.circuit, &placed.placement, &grid, &synth.macro_rects, &with_rrr).unwrap();
        assert!(
            b.total_overflow < a.total_overflow,
            "rrr did not reduce overflow: {} -> {}",
            a.total_overflow,
            b.total_overflow
        );
        assert!(b.wirelength >= a.wirelength, "detours cannot shorten wirelength");
    }

    #[test]
    fn tighter_capacity_increases_congestion_rate() {
        let loose = routed_synth(400, 16.0);
        let tight = routed_synth(400, 4.0);
        assert!(tight.congestion_rate() >= loose.congestion_rate());
    }

    #[test]
    fn routing_is_deterministic() {
        let a = routed_synth(200, 8.0);
        let b = routed_synth(200, 8.0);
        assert_eq!(a.usage, b.usage);
        assert_eq!(a.wirelength, b.wirelength);
    }

    #[test]
    fn two_pin_straight_net_uses_expected_edges() {
        let die = Rect::new(0.0, 0.0, 4.0, 1.0);
        let grid = GcellGrid::new(die, 4, 1);
        let mut c = Circuit::new("line", die);
        let a = c.add_cell(Cell::movable("a", 0.2, 0.2));
        let b = c.add_cell(Cell::movable("b", 0.2, 0.2));
        c.add_net(Net::new("n", vec![Pin::at_center(a), Pin::at_center(b)]));
        let mut p = Placement::zeroed(2);
        p.set_position(a, Point::new(0.5, 0.5)); // gcell (0,0)
        p.set_position(b, Point::new(3.5, 0.5)); // gcell (3,0)
        let r = route(&c, &p, &grid, &[], &RouterConfig::default()).unwrap();
        assert_eq!(r.wirelength, 3);
        assert_eq!(r.usage.h(0, 0), 1.0);
        assert_eq!(r.usage.h(1, 0), 1.0);
        assert_eq!(r.usage.h(2, 0), 1.0);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let die = Rect::new(0.0, 0.0, 4.0, 4.0);
        let grid = GcellGrid::new(die, 4, 4);
        let c = Circuit::new("x", die);
        let p = Placement::zeroed(0);
        let bad = RouterConfig {
            capacity: CapacityConfig { h_tracks: 0.0, ..Default::default() },
            ..Default::default()
        };
        assert!(route(&c, &p, &grid, &[], &bad).is_err());
    }

    #[test]
    fn paths_kept_only_on_request() {
        let cfg = SynthConfig { n_cells: 200, grid_nx: 10, grid_ny: 10, ..SynthConfig::default() };
        let synth = generate(&cfg).unwrap();
        let grid = cfg.grid();
        let placed = GlobalPlacer::default().place_synth(&synth, &grid).unwrap();
        let without =
            route(&synth.circuit, &placed.placement, &grid, &[], &RouterConfig::default()).unwrap();
        assert!(without.net_paths().is_empty());
        let with_cfg = RouterConfig { keep_paths: true, ..Default::default() };
        let with = route(&synth.circuit, &placed.placement, &grid, &[], &with_cfg).unwrap();
        assert!(!with.net_paths().is_empty());
        // kept paths account for the full wirelength
        let total: u64 =
            with.net_paths().iter().map(|(_, p)| p.len().saturating_sub(1) as u64).sum();
        assert_eq!(total, with.wirelength);
        // net ids are valid
        assert!(with.net_paths().iter().all(|(n, _)| (*n as usize) < synth.circuit.num_nets()));
    }

    #[test]
    fn attribution_points_at_overflowed_cells() {
        // corridor conflict without negotiation: the straight row must be
        // attributed to all three nets
        let die = Rect::new(0.0, 0.0, 5.0, 3.0);
        let grid = GcellGrid::new(die, 5, 3);
        let mut c = Circuit::new("attr", die);
        let mut p = Placement::zeroed(6);
        for i in 0..3 {
            let a = c.add_cell(Cell::movable(format!("a{i}"), 0.1, 0.1));
            let b = c.add_cell(Cell::movable(format!("b{i}"), 0.1, 0.1));
            c.add_net(Net::new(format!("n{i}"), vec![Pin::at_center(a), Pin::at_center(b)]));
            p.set_position(a, Point::new(0.5, 1.5));
            p.set_position(b, Point::new(4.5, 1.5));
        }
        let cfg = RouterConfig {
            capacity: CapacityConfig { h_tracks: 1.0, v_tracks: 1.0, blockage_factor: 0.0 },
            rrr_rounds: 0,
            keep_paths: true,
            ..Default::default()
        };
        let r = route(&c, &p, &grid, &[], &cfg).unwrap();
        let attribution = r.congestion_attribution(&grid);
        assert!(!attribution.is_empty());
        // every attributed cell lists all three nets (they share the row)
        for (_, nets) in &attribution {
            assert_eq!(nets.as_slice(), &[0, 1, 2]);
        }
        // without keep_paths the attribution is empty
        let cfg2 = RouterConfig { keep_paths: false, ..cfg };
        let r2 = route(&c, &p, &grid, &[], &cfg2).unwrap();
        assert!(r2.congestion_attribution(&grid).is_empty());
    }

    #[test]
    fn labels_dimensions_match_grid() {
        let r = routed_synth(200, 8.0);
        assert_eq!(r.labels.nx, 16);
        assert_eq!(r.labels.ny, 16);
        assert_eq!(r.labels.demand_h.len(), 256);
        assert_eq!(r.labels.congestion(Dir::H).len(), 256);
    }
}
