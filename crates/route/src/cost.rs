//! The congestion-aware edge cost model shared by pattern and maze routing.
//!
//! PathFinder-style negotiation: an edge's cost grows with (a) the overflow
//! it would incur if one more wire crossed it and (b) a history term that
//! accumulates on persistently congested edges across rip-up-and-reroute
//! rounds, pushing nets to detour.

use crate::maps::{Dir, EdgeField};

/// Cost parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Multiplier on prospective overflow (`usage + 1 - capacity`).
    pub overflow_penalty: f32,
    /// Soft pressure applied as utilisation approaches capacity, before
    /// any overflow occurs (keeps initial routes spread out).
    pub pressure: f32,
}

impl Default for CostModel {
    fn default() -> Self {
        Self { overflow_penalty: 4.0, pressure: 0.5 }
    }
}

impl CostModel {
    /// Cost of pushing one more wire across an edge with the given state.
    pub fn edge_cost(&self, usage: f32, capacity: f32, history: f32) -> f32 {
        let over = (usage + 1.0 - capacity).max(0.0);
        let util = if capacity > 0.0 { (usage / capacity).min(1.0) } else { 1.0 };
        1.0 + history + self.pressure * util + self.overflow_penalty * over
    }

    /// Total cost of a G-cell path under the current usage/history fields.
    ///
    /// # Panics
    ///
    /// Panics if consecutive path cells are not adjacent.
    pub fn path_cost(
        &self,
        path: &[vlsi_netlist::GcellCoord],
        usage: &EdgeField,
        capacity: &EdgeField,
        history: &EdgeField,
    ) -> f32 {
        let mut total = 0.0;
        for w in path.windows(2) {
            let (dir, x, y) = EdgeField::edge_between(w[0], w[1]);
            total += self.edge_cost(
                usage.get(dir, x, y),
                capacity.get(dir, x, y),
                history.get(dir, x, y),
            );
        }
        total
    }

    /// Convenience for code that has `(dir, x, y)` addressing.
    pub fn edge_cost_at(
        &self,
        dir: Dir,
        x: usize,
        y: usize,
        usage: &EdgeField,
        capacity: &EdgeField,
        history: &EdgeField,
    ) -> f32 {
        self.edge_cost(usage.get(dir, x, y), capacity.get(dir, x, y), history.get(dir, x, y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_edge_costs_base() {
        let m = CostModel::default();
        assert!((m.edge_cost(0.0, 10.0, 0.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cost_increases_with_usage() {
        let m = CostModel::default();
        let c1 = m.edge_cost(2.0, 10.0, 0.0);
        let c2 = m.edge_cost(8.0, 10.0, 0.0);
        let c3 = m.edge_cost(12.0, 10.0, 0.0);
        assert!(c1 < c2 && c2 < c3);
    }

    #[test]
    fn overflow_penalty_kicks_in_at_capacity() {
        let m = CostModel { overflow_penalty: 4.0, pressure: 0.0 };
        // usage = capacity: adding one wire overflows by 1
        assert!((m.edge_cost(10.0, 10.0, 0.0) - (1.0 + 4.0)).abs() < 1e-6);
    }

    #[test]
    fn history_adds_linearly() {
        let m = CostModel { overflow_penalty: 0.0, pressure: 0.0 };
        assert!((m.edge_cost(0.0, 10.0, 2.5) - 3.5).abs() < 1e-6);
    }

    #[test]
    fn zero_capacity_is_expensive() {
        let m = CostModel::default();
        assert!(m.edge_cost(0.0, 0.0, 0.0) > m.edge_cost(0.0, 10.0, 0.0));
    }
}
