//! Routing capacity construction, including macro blockages.
//!
//! Real global routers derive per-edge capacities from the metal stack and
//! subtract blockages under macros. Here each edge starts with a uniform
//! track count and loses capacity proportional to how much of the G-cells
//! it joins is covered by macro outlines.

use vlsi_netlist::{GcellGrid, Rect};

use crate::maps::EdgeField;

/// Configuration for [`build_capacity`].
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityConfig {
    /// Horizontal tracks per edge (unblocked).
    pub h_tracks: f32,
    /// Vertical tracks per edge (unblocked).
    pub v_tracks: f32,
    /// Fraction of capacity removed when a G-cell is fully covered by a
    /// macro (1.0 = fully blocked).
    pub blockage_factor: f32,
}

impl Default for CapacityConfig {
    fn default() -> Self {
        Self { h_tracks: 10.0, v_tracks: 10.0, blockage_factor: 0.8 }
    }
}

/// Fraction of a G-cell's area covered by any of `blockages`
/// (overlaps between blockages may double-count; capped at 1).
fn coverage(grid: &GcellGrid, idx: usize, blockages: &[Rect]) -> f32 {
    let rect = grid.gcell_rect(grid.coord(idx));
    let area = rect.area();
    if area <= 0.0 {
        return 0.0;
    }
    let covered: f32 =
        blockages.iter().filter_map(|b| rect.intersection(b)).map(|i| i.area()).sum();
    (covered / area).min(1.0)
}

/// Builds the per-edge capacity field for a grid with macro `blockages`.
///
/// The capacity of an edge is the unblocked track count scaled by the mean
/// free fraction of its two adjacent G-cells:
/// `cap = tracks · (1 - blockage_factor · coverage)`.
pub fn build_capacity(grid: &GcellGrid, blockages: &[Rect], cfg: &CapacityConfig) -> EdgeField {
    let (nx, ny) = (grid.nx() as usize, grid.ny() as usize);
    let cover: Vec<f32> = (0..grid.num_gcells()).map(|i| coverage(grid, i, blockages)).collect();
    let free = |x: usize, y: usize| 1.0 - cfg.blockage_factor * cover[y * nx + x];
    let mut cap = EdgeField::zeros(grid);
    for y in 0..ny {
        for x in 0..nx - 1 {
            *cap.h_mut(x, y) = cfg.h_tracks * 0.5 * (free(x, y) + free(x + 1, y));
        }
    }
    for y in 0..ny - 1 {
        for x in 0..nx {
            *cap.v_mut(x, y) = cfg.v_tracks * 0.5 * (free(x, y) + free(x, y + 1));
        }
    }
    cap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maps::Dir;

    fn grid4() -> GcellGrid {
        GcellGrid::new(Rect::new(0.0, 0.0, 8.0, 8.0), 4, 4)
    }

    #[test]
    fn unblocked_capacity_is_uniform() {
        let cap = build_capacity(&grid4(), &[], &CapacityConfig::default());
        assert!(cap.to_gcell_map(Dir::H).iter().all(|&c| (c - 10.0).abs() < 1e-6));
        assert!(cap.to_gcell_map(Dir::V).iter().all(|&c| (c - 10.0).abs() < 1e-6));
    }

    #[test]
    fn macro_reduces_capacity_underneath() {
        // macro fully covers g-cells (1,1) and (2,1)
        let blk = Rect::new(2.0, 2.0, 6.0, 4.0);
        let cap = build_capacity(&grid4(), &[blk], &CapacityConfig::default());
        // edge between the two fully covered cells: 10 * (1 - 0.8) = 2
        assert!((cap.h(1, 1) - 2.0).abs() < 1e-6, "got {}", cap.h(1, 1));
        // far-away edge untouched
        assert!((cap.h(0, 3) - 10.0).abs() < 1e-6);
        // half-covered boundary edge: mean of free 0.2 and 1.0 -> 6
        assert!((cap.h(2, 1) - 6.0).abs() < 1e-6, "got {}", cap.h(2, 1));
    }

    #[test]
    fn full_blockage_factor_zeroes_capacity() {
        let blk = Rect::new(0.0, 0.0, 8.0, 8.0); // cover everything
        let cfg = CapacityConfig { blockage_factor: 1.0, ..Default::default() };
        let cap = build_capacity(&grid4(), &[blk], &cfg);
        assert_eq!(cap.total(Dir::H), 0.0);
        assert_eq!(cap.total(Dir::V), 0.0);
    }

    #[test]
    fn overlapping_blockages_cap_at_full_coverage() {
        let blk = Rect::new(0.0, 0.0, 2.0, 2.0);
        let cap_single = build_capacity(&grid4(), &[blk], &CapacityConfig::default());
        let cap_double = build_capacity(&grid4(), &[blk, blk], &CapacityConfig::default());
        assert_eq!(cap_single, cap_double);
    }

    #[test]
    fn asymmetric_tracks() {
        let cfg = CapacityConfig { h_tracks: 12.0, v_tracks: 4.0, ..Default::default() };
        let cap = build_capacity(&grid4(), &[], &cfg);
        assert!((cap.h(0, 0) - 12.0).abs() < 1e-6);
        assert!((cap.v(0, 0) - 4.0).abs() < 1e-6);
    }
}
