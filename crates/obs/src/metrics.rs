//! Lock-light metrics registry: counters, gauges, log-scale histograms.
//!
//! Design constraints (carried from the serving engine's determinism
//! guarantees):
//!
//! * **Recording never blocks.** A handle ([`Counter`], [`Gauge`],
//!   [`Histogram`]) resolved once from the [`Registry`] records with
//!   relaxed atomic ops only; the registry mutex guards registration and
//!   snapshotting, never the hot path — so snapshotting mid-load cannot
//!   deadlock a worker.
//! * **Disabled means (almost) free.** Every record starts with one
//!   relaxed load of the shared enable flag and returns immediately when
//!   it is off; the [`Histogram::start`]/[`Histogram::stop_us`] timer
//!   pair additionally skips the `Instant::now()` clock read.
//! * **Bounded memory.** Histograms use a fixed array of power-of-two
//!   ("log-scale") buckets — no sample retention, no allocation after
//!   registration.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of log-scale histogram buckets. Bucket 0 holds zero-valued
/// observations; bucket `i >= 1` covers `[2^(i-1), 2^i - 1]`; the last
/// bucket additionally absorbs everything larger. With 40 buckets the
/// cover reaches `2^39 - 1` microseconds (~6 days) before saturating.
pub const BUCKETS: usize = 40;

#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (the value a quantile lookup
/// reports for ranks landing in that bucket).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i) - 1
    }
}

/// A monotone counter handle. Cloning shares the underlying cell.
#[derive(Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    cell: Arc<AtomicU64>,
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter").field("value", &self.get()).finish_non_exhaustive()
    }
}

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. One relaxed load + one relaxed fetch-add when enabled;
    /// one relaxed load when disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (reads work even when recording is disabled).
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-value / high-water gauge handle.
#[derive(Clone)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    cell: Arc<AtomicU64>,
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gauge").field("value", &self.get()).finish_non_exhaustive()
    }
}

impl Gauge {
    /// Stores `v`.
    #[inline]
    pub fn set(&self, v: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if above the current value; returns
    /// `true` when `v` set a new high-water mark (always `false` when
    /// recording is disabled).
    #[inline]
    pub fn record_max(&self, v: u64) -> bool {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_max(v, Ordering::Relaxed) < v
        } else {
            false
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

pub(crate) struct HistogramCell {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistogramCell {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A fixed-bucket log-scale histogram handle. Observations are `u64`
/// values — microseconds for the `*_us` series, plain counts (dirty
/// rows, halo rows) for the others.
#[derive(Clone)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    cell: Arc<HistogramCell>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("count", &self.count()).finish_non_exhaustive()
    }
}

impl Histogram {
    /// Records one observation: three relaxed fetch-adds when enabled,
    /// one relaxed load when disabled.
    #[inline]
    pub fn observe(&self, v: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.count.fetch_add(1, Ordering::Relaxed);
            self.cell.sum.fetch_add(v, Ordering::Relaxed);
            self.cell.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Starts a span timer, or returns `None` without reading the clock
    /// when recording is disabled. Pair with [`Histogram::stop_us`].
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.enabled.load(Ordering::Relaxed) {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Ends a span started with [`Histogram::start`], recording the
    /// elapsed microseconds. A `None` token (disabled at start) is a
    /// no-op.
    #[inline]
    pub fn stop_us(&self, started: Option<Instant>) {
        if let Some(t0) = started {
            self.observe(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
        }
    }

    /// Number of observations so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }
}

enum Cell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCell>),
}

impl Cell {
    fn kind(&self) -> &'static str {
        match self {
            Cell::Counter(_) => "counter",
            Cell::Gauge(_) => "gauge",
            Cell::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    cell: Cell,
}

/// Renders the canonical series key: `name` or `name{k="v",...}`.
fn series_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut key = String::with_capacity(name.len() + 16 * labels.len());
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        let _ = write!(key, "{k}=\"{v}\"");
    }
    key.push('}');
    key
}

/// The metrics registry: a named collection of atomic cells plus the
/// shared enable flag every handle consults.
///
/// One registry per engine (or per bench run). Handles stay valid for
/// the life of the process even if the registry is dropped — they own
/// `Arc`s to their cells.
pub struct Registry {
    enabled: Arc<AtomicBool>,
    series: Mutex<BTreeMap<String, Entry>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.series.lock().map(|m| m.len()).unwrap_or(0);
        f.debug_struct("Registry")
            .field("enabled", &self.is_enabled())
            .field("series", &n)
            .finish_non_exhaustive()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An enabled registry.
    pub fn new() -> Self {
        Self { enabled: Arc::new(AtomicBool::new(true)), series: Mutex::new(BTreeMap::new()) }
    }

    /// A disabled registry: handles register as usual but every record
    /// is a single relaxed load (the `EngineConfig::metrics` off-switch
    /// builds one of these).
    pub fn disabled() -> Self {
        let r = Self::new();
        r.enabled.store(false, Ordering::Relaxed);
        r
    }

    /// Whether handles currently record.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flips recording on or off for every handle of this registry.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    fn resolve(&self, name: &str, labels: &[(&str, &str)], make: fn() -> Cell) -> Cell {
        let key = series_key(name, labels);
        let mut map = self.series.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let entry = map.entry(key).or_insert_with(|| Entry {
            name: name.to_string(),
            labels: labels.iter().map(|(k, v)| ((*k).to_string(), (*v).to_string())).collect(),
            cell: make(),
        });
        match &entry.cell {
            Cell::Counter(c) => Cell::Counter(Arc::clone(c)),
            Cell::Gauge(g) => Cell::Gauge(Arc::clone(g)),
            Cell::Histogram(h) => Cell::Histogram(Arc::clone(h)),
        }
    }

    /// Resolves (registering on first use) an unlabeled counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Resolves a labeled counter, e.g.
    /// `counter_with("lhnn_design_updates_total", &[("design", "d0")])`.
    ///
    /// # Panics
    ///
    /// Panics if the same series was previously registered with a
    /// different metric kind (a programming error).
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.resolve(name, labels, || Cell::Counter(Arc::new(AtomicU64::new(0)))) {
            Cell::Counter(cell) => Counter { enabled: Arc::clone(&self.enabled), cell },
            other => {
                panic!("series {} already registered as {}", series_key(name, labels), other.kind())
            }
        }
    }

    /// Resolves (registering on first use) an unlabeled gauge.
    ///
    /// # Panics
    ///
    /// Panics on a metric-kind collision, like [`Registry::counter_with`].
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.resolve(name, &[], || Cell::Gauge(Arc::new(AtomicU64::new(0)))) {
            Cell::Gauge(cell) => Gauge { enabled: Arc::clone(&self.enabled), cell },
            other => panic!("series {name} already registered as {}", other.kind()),
        }
    }

    /// Resolves (registering on first use) an unlabeled histogram.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// Resolves a labeled histogram.
    ///
    /// # Panics
    ///
    /// Panics on a metric-kind collision, like [`Registry::counter_with`].
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.resolve(name, labels, || Cell::Histogram(Arc::new(HistogramCell::new()))) {
            Cell::Histogram(cell) => Histogram { enabled: Arc::clone(&self.enabled), cell },
            other => {
                panic!("series {} already registered as {}", series_key(name, labels), other.kind())
            }
        }
    }

    /// The span histogram for one named stage:
    /// `lhnn_stage_us{stage="<stage>"}`.
    pub fn stage(&self, stage: &str) -> Histogram {
        self.histogram_with("lhnn_stage_us", &[("stage", stage)])
    }

    /// A point-in-time copy of every registered series.
    ///
    /// Takes only the registration mutex (never contended by recording),
    /// so it is safe to call from any thread at any rate. Histogram
    /// count/sum/buckets are read without a global ordering, so a
    /// snapshot racing live traffic may be internally off by the few
    /// in-flight observations; each individual cell is monotone.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.series.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let series = map
            .values()
            .map(|e| SeriesSnapshot {
                name: e.name.clone(),
                labels: e.labels.clone(),
                value: match &e.cell {
                    Cell::Counter(c) => SeriesValue::Counter(c.load(Ordering::Relaxed)),
                    Cell::Gauge(g) => SeriesValue::Gauge(g.load(Ordering::Relaxed)),
                    Cell::Histogram(h) => SeriesValue::Histogram(HistogramSnapshot {
                        count: h.count.load(Ordering::Relaxed),
                        sum: h.sum.load(Ordering::Relaxed),
                        buckets: h.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
                    }),
                },
            })
            .collect();
        Snapshot { series }
    }
}

/// A frozen copy of one series.
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    /// Base metric name (no labels).
    pub name: String,
    /// Label pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// The recorded value(s).
    pub value: SeriesValue,
}

impl SeriesSnapshot {
    /// The canonical `name{k="v"}` key.
    pub fn key(&self) -> String {
        let labels: Vec<(&str, &str)> =
            self.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        series_key(&self.name, &labels)
    }
}

/// The value of one frozen series.
#[derive(Debug, Clone)]
pub enum SeriesValue {
    /// Monotone counter value.
    Counter(u64),
    /// Last/high-water gauge value.
    Gauge(u64),
    /// Histogram counts.
    Histogram(HistogramSnapshot),
}

/// Frozen histogram contents.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (exact; the mean is `sum / count`).
    pub sum: u64,
    /// Per-bucket observation counts, `buckets[i]` covering
    /// `[2^(i-1), 2^i - 1]` (bucket 0 holds zeros).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Exact mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: nearest-rank over the bucket counts,
    /// reported as the landing bucket's inclusive upper bound (so the
    /// estimate errs high by at most 2x — the bucket width).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil()).max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(self.buckets.len().saturating_sub(1))
    }
}

/// A point-in-time copy of a whole registry, ordered by series key.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Every registered series.
    pub series: Vec<SeriesSnapshot>,
}

impl Snapshot {
    /// Looks a series up by its canonical key (`name` or
    /// `name{k="v",...}` with labels in registration order).
    pub fn get(&self, key: &str) -> Option<&SeriesSnapshot> {
        self.series.iter().find(|s| s.key() == key)
    }

    /// Counter value by canonical key, 0 when absent or not a counter.
    pub fn counter(&self, key: &str) -> u64 {
        match self.get(key).map(|s| &s.value) {
            Some(SeriesValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Histogram by canonical key, `None` when absent or another kind.
    pub fn histogram(&self, key: &str) -> Option<&HistogramSnapshot> {
        match self.get(key).map(|s| &s.value) {
            Some(SeriesValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_records_and_reads() {
        let r = Registry::new();
        let c = r.counter("lhnn_requests_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // same name resolves to the same cell
        assert_eq!(r.counter("lhnn_requests_total").get(), 5);
        assert_eq!(r.snapshot().counter("lhnn_requests_total"), 5);
    }

    #[test]
    fn labels_separate_series() {
        let r = Registry::new();
        r.counter_with("c", &[("design", "a")]).add(1);
        r.counter_with("c", &[("design", "b")]).add(2);
        let snap = r.snapshot();
        assert_eq!(snap.counter("c{design=\"a\"}"), 1);
        assert_eq!(snap.counter("c{design=\"b\"}"), 2);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::disabled();
        let c = r.counter("c");
        let h = r.histogram("h");
        let g = r.gauge("g");
        c.inc();
        h.observe(7);
        assert!(!g.record_max(9));
        // the span timer must not even read the clock
        assert!(h.start().is_none());
        h.stop_us(None);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(g.get(), 0);
        // flipping the switch re-arms existing handles
        r.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(2), 3);

        let r = Registry::new();
        let h = r.histogram("h");
        // 90 fast observations (bucket [8,15]) + 10 slow ([1024,2047])
        for _ in 0..90 {
            h.observe(10);
        }
        for _ in 0..10 {
            h.observe(1500);
        }
        let snap = r.snapshot();
        let hs = snap.histogram("h").unwrap();
        assert_eq!(hs.count, 100);
        assert_eq!(hs.sum, 90 * 10 + 10 * 1500);
        assert_eq!(hs.quantile(0.50), 15); // upper bound of [8,15]
        assert_eq!(hs.quantile(0.90), 15);
        assert_eq!(hs.quantile(0.99), 2047); // upper bound of [1024,2047]
        assert!((hs.mean() - 159.0).abs() < 1e-9);
    }

    #[test]
    fn gauge_high_water() {
        let r = Registry::new();
        let g = r.gauge("depth");
        assert!(g.record_max(3));
        assert!(!g.record_max(2));
        assert!(g.record_max(5));
        assert_eq!(g.get(), 5);
        g.set(1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn span_timer_records_elapsed() {
        let r = Registry::new();
        let h = r.stage("splice");
        let t = h.start();
        assert!(t.is_some());
        h.stop_us(t);
        assert_eq!(h.count(), 1);
        assert_eq!(r.snapshot().histogram("lhnn_stage_us{stage=\"splice\"}").unwrap().count, 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_collision_panics() {
        let r = Registry::new();
        r.counter("x");
        r.histogram("x");
    }

    #[test]
    fn snapshot_is_ordered_by_key() {
        let r = Registry::new();
        r.counter("b");
        r.counter("a");
        let keys: Vec<String> = r.snapshot().series.iter().map(SeriesSnapshot::key).collect();
        assert_eq!(keys, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn concurrent_recording_is_exact_when_quiesced() {
        let r = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = r.counter("n");
            let h = r.histogram("lat");
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    c.inc();
                    h.observe(i % 97);
                }
            }));
        }
        // snapshot concurrently with the writers: must not deadlock, and
        // every counter read is monotone
        let mut last = 0;
        for _ in 0..50 {
            let v = r.snapshot().counter("n");
            assert!(v >= last);
            last = v;
        }
        for t in handles {
            t.join().unwrap();
        }
        let snap = r.snapshot();
        assert_eq!(snap.counter("n"), 4000);
        assert_eq!(snap.histogram("lat").unwrap().count, 4000);
    }
}
