//! Bounded flight recorder: a ring of recent structured events for
//! postmortems.
//!
//! The serving engine's state tags (a session silently flipping to
//! poisoned, a model hot-swap evicting cache entries, a queue spike) are
//! invisible after the fact. The recorder keeps the last `capacity`
//! such events with sequence numbers and microsecond timestamps, so a
//! `ServeHandle` snapshot can answer "what happened right before this
//! engine misbehaved" without any logging infrastructure.
//!
//! Recording takes one short mutex on the ring — events are rare
//! (fallbacks, swaps, high-water marks), never per-request — and a
//! disabled recorder declines before locking.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// What kind of incident a [`FlightEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FlightEventKind {
    /// A session update crossed a structural boundary and fell back to a
    /// full pipeline rebuild (the rebuild succeeded).
    Fallback,
    /// A session's G-net column space crossed the tombstone threshold and
    /// the fallback rebuild compacted it, renumbering columns and
    /// invalidating downstream activation caches.
    Compaction,
    /// A structural fallback's rebuild failed; the session pipeline is
    /// poisoned and will refuse further traffic.
    Poisoned,
    /// A session update panicked mid-application; the session is wedged.
    Wedged,
    /// A model version was hot-swapped in the registry, evicting the
    /// displaced version's cache entries.
    HotSwap,
    /// A shard queue reached a new high-water depth worth noting.
    QueueHigh,
    /// A worker observed a panicking forward pass and the job's waiters
    /// were failed.
    WorkerLost,
}

impl std::fmt::Display for FlightEventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FlightEventKind::Fallback => "fallback",
            FlightEventKind::Compaction => "compaction",
            FlightEventKind::Poisoned => "poisoned",
            FlightEventKind::Wedged => "wedged",
            FlightEventKind::HotSwap => "hot-swap",
            FlightEventKind::QueueHigh => "queue-high",
            FlightEventKind::WorkerLost => "worker-lost",
        };
        f.write_str(s)
    }
}

/// One recorded incident.
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// Monotone sequence number (total events ever recorded, including
    /// ones the ring has since dropped).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub at_us: u64,
    /// Incident kind.
    pub kind: FlightEventKind,
    /// What the event is about — a design name, `shard N`, or a model
    /// name, depending on the kind.
    pub scope: String,
    /// Free-form detail (reason, counts).
    pub detail: String,
}

impl std::fmt::Display for FlightEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "#{} +{:.3}s {} [{}] {}",
            self.seq,
            self.at_us as f64 / 1e6,
            self.kind,
            self.scope,
            self.detail
        )
    }
}

struct FlightState {
    ring: VecDeque<FlightEvent>,
    seq: u64,
}

/// The bounded event ring. One per engine.
pub struct FlightRecorder {
    enabled: AtomicBool,
    capacity: usize,
    started: Instant,
    state: Mutex<FlightState>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("enabled", &self.is_enabled())
            .field("capacity", &self.capacity)
            .field("total", &self.total())
            .finish_non_exhaustive()
    }
}

impl FlightRecorder {
    /// An enabled recorder keeping the most recent `capacity` events
    /// (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            enabled: AtomicBool::new(true),
            capacity: capacity.max(1),
            started: Instant::now(),
            state: Mutex::new(FlightState { ring: VecDeque::new(), seq: 0 }),
        }
    }

    /// A recorder that drops everything (the engine off-switch).
    pub fn disabled() -> Self {
        let r = Self::new(1);
        r.enabled.store(false, Ordering::Relaxed);
        r
    }

    /// Whether events are currently kept. Call sites formatting an
    /// expensive detail string may check this first.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records one event (dropped without locking when disabled).
    pub fn record(&self, kind: FlightEventKind, scope: &str, detail: impl Into<String>) {
        if !self.is_enabled() {
            return;
        }
        let at_us = u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX);
        let mut st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        st.seq += 1;
        let ev = FlightEvent {
            seq: st.seq,
            at_us,
            kind,
            scope: scope.to_string(),
            detail: detail.into(),
        };
        if st.ring.len() == self.capacity {
            st.ring.pop_front();
        }
        st.ring.push_back(ev);
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let st = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        st.ring.iter().cloned().collect()
    }

    /// Total events ever recorded (including ones the ring dropped).
    pub fn total(&self) -> u64 {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner).seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let r = FlightRecorder::new(8);
        r.record(FlightEventKind::Fallback, "d0", "structural crossing: 3 nets");
        r.record(FlightEventKind::HotSwap, "lhnn", "v1 -> v2");
        let evs = r.snapshot();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].seq, 1);
        assert_eq!(evs[0].kind, FlightEventKind::Fallback);
        assert_eq!(evs[1].scope, "lhnn");
        assert!(evs[1].at_us >= evs[0].at_us);
        let line = format!("{}", evs[0]);
        assert!(line.contains("fallback"), "got {line}");
        assert!(line.contains("[d0]"), "got {line}");
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let r = FlightRecorder::new(3);
        for i in 0..10 {
            r.record(FlightEventKind::QueueHigh, "shard 0", format!("depth {i}"));
        }
        let evs = r.snapshot();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].seq, 8, "oldest retained event");
        assert_eq!(evs[2].seq, 10);
        assert_eq!(r.total(), 10);
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let r = FlightRecorder::disabled();
        assert!(!r.is_enabled());
        r.record(FlightEventKind::Wedged, "d0", "panic");
        assert!(r.snapshot().is_empty());
        assert_eq!(r.total(), 0);
    }

    #[test]
    fn kinds_render_stably() {
        // the CLI greps/pretty-prints these names; keep them fixed
        assert_eq!(FlightEventKind::Fallback.to_string(), "fallback");
        assert_eq!(FlightEventKind::Compaction.to_string(), "compaction");
        assert_eq!(FlightEventKind::Poisoned.to_string(), "poisoned");
        assert_eq!(FlightEventKind::Wedged.to_string(), "wedged");
        assert_eq!(FlightEventKind::HotSwap.to_string(), "hot-swap");
        assert_eq!(FlightEventKind::QueueHigh.to_string(), "queue-high");
        assert_eq!(FlightEventKind::WorkerLost.to_string(), "worker-lost");
    }
}
