//! Exposition: Prometheus-style text, JSON snapshots, and a parser for
//! reading the text form back.
//!
//! Both renderers are hand-rolled (the workspace's serde is a
//! compile-only stand-in), following the same escaping discipline as
//! `lhnn_data::write_bench_json` so the artifacts slot into the existing
//! `results/` pipeline.
//!
//! Histograms render **summary-style**: the unsuffixed series carries
//! the mean, `quantile="..."` label variants carry p50/p95/p99, and
//! `_count`/`_sum` suffixes carry the totals. That keeps the canonical
//! series key (e.g. `lhnn_stage_us{stage="splice"}`) present verbatim in
//! the dump, which the CI smoke step greps for.

use std::fmt::Write as _;

use crate::metrics::{SeriesValue, Snapshot};

/// Quantiles the summary rendering and JSON snapshot report.
const QUANTILES: [f64; 3] = [0.50, 0.95, 0.99];

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape(v));
        first = false;
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
    out
}

impl Snapshot {
    /// Renders the snapshot as Prometheus-style text.
    ///
    /// Counters and gauges are one line per series; histograms render as
    /// summaries (mean on the unsuffixed series, `quantile` variants,
    /// `_count` and `_sum`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_typed: Option<(String, &'static str)> = None;
        for s in &self.series {
            let kind = match &s.value {
                SeriesValue::Counter(_) => "counter",
                SeriesValue::Gauge(_) => "gauge",
                SeriesValue::Histogram(_) => "summary",
            };
            if last_typed.as_ref().map(|(n, k)| (n.as_str(), *k)) != Some((s.name.as_str(), kind)) {
                let _ = writeln!(out, "# TYPE {} {kind}", s.name);
                last_typed = Some((s.name.clone(), kind));
            }
            let labels = render_labels(&s.labels, None);
            match &s.value {
                SeriesValue::Counter(v) | SeriesValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{labels} {v}", s.name);
                }
                SeriesValue::Histogram(h) => {
                    let _ = writeln!(out, "{}{labels} {:.4}", s.name, h.mean());
                    for q in QUANTILES {
                        let ql = render_labels(&s.labels, Some(("quantile", &format!("{q}"))));
                        let _ = writeln!(out, "{}{ql} {}", s.name, h.quantile(q));
                    }
                    let _ = writeln!(out, "{}_count{labels} {}", s.name, h.count);
                    let _ = writeln!(out, "{}_sum{labels} {}", s.name, h.sum);
                }
            }
        }
        out
    }

    /// Renders the snapshot as a hand-rolled JSON document
    /// (`{"snapshot": "lhnn_obs", "series": [...]}`), mirroring the
    /// `write_bench_json` artifact style.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"snapshot\": \"lhnn_obs\",");
        let _ = writeln!(out, "  \"series\": [");
        for (i, s) in self.series.iter().enumerate() {
            let comma = if i + 1 < self.series.len() { "," } else { "" };
            let mut labels = String::new();
            for (j, (k, v)) in s.labels.iter().enumerate() {
                let sep = if j > 0 { ", " } else { "" };
                let _ = write!(labels, "{sep}\"{}\": \"{}\"", escape(k), escape(v));
            }
            match &s.value {
                SeriesValue::Counter(v) => {
                    let _ = writeln!(
                        out,
                        "    {{\"name\": \"{}\", \"labels\": {{{labels}}}, \"kind\": \"counter\", \"value\": {v}}}{comma}",
                        escape(&s.name)
                    );
                }
                SeriesValue::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "    {{\"name\": \"{}\", \"labels\": {{{labels}}}, \"kind\": \"gauge\", \"value\": {v}}}{comma}",
                        escape(&s.name)
                    );
                }
                SeriesValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "    {{\"name\": \"{}\", \"labels\": {{{labels}}}, \"kind\": \"histogram\", \
                         \"count\": {}, \"sum\": {}, \"mean\": {:.4}, \
                         \"p50\": {}, \"p95\": {}, \"p99\": {}}}{comma}",
                        escape(&s.name),
                        h.count,
                        h.sum,
                        h.mean(),
                        h.quantile(0.50),
                        h.quantile(0.95),
                        h.quantile(0.99),
                    );
                }
            }
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }
}

/// One series parsed back from Prometheus-style text.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedSeries {
    /// Metric name (suffixes like `_count` are kept verbatim).
    pub name: String,
    /// Label pairs in file order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl ParsedSeries {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Parses Prometheus-style text (the subset [`Snapshot::to_prometheus`]
/// emits: `name value` and `name{k="v",...} value` lines; `#` comments
/// and blank lines are skipped; malformed lines are skipped too rather
/// than failing the whole postmortem).
pub fn parse_prometheus(text: &str) -> Vec<ParsedSeries> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some(space) = line.rfind(' ') else { continue };
        let (key, value) = line.split_at(space);
        let Ok(value) = value.trim().parse::<f64>() else { continue };
        let key = key.trim();
        let (name, labels) = match key.find('{') {
            None => (key.to_string(), Vec::new()),
            Some(open) => {
                let Some(close) = key.rfind('}') else { continue };
                if close < open {
                    continue;
                }
                let mut labels = Vec::new();
                let body = &key[open + 1..close];
                // labels never contain escaped quotes in our own dumps;
                // split on `",` boundaries to tolerate commas in values
                for pair in body.split("\",") {
                    let pair = pair.trim_end_matches('"');
                    let Some(eq) = pair.find("=\"") else { continue };
                    labels.push((pair[..eq].to_string(), pair[eq + 2..].to_string()));
                }
                (key[..open].to_string(), labels)
            }
        };
        out.push(ParsedSeries { name, labels, value });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.counter("lhnn_requests_total").add(7);
        r.counter_with("lhnn_design_updates_total", &[("design", "d0")]).add(3);
        r.gauge("lhnn_queue_depth_high").set(5);
        let h = r.stage("splice");
        h.observe(10);
        h.observe(1500);
        r.snapshot()
    }

    #[test]
    fn prometheus_text_contains_canonical_keys() {
        let text = sample().to_prometheus();
        assert!(text.contains("lhnn_requests_total 7"), "got:\n{text}");
        assert!(text.contains("lhnn_design_updates_total{design=\"d0\"} 3"), "got:\n{text}");
        assert!(text.contains("lhnn_queue_depth_high 5"), "got:\n{text}");
        // the canonical histogram key appears verbatim (CI greps this)
        assert!(text.contains("lhnn_stage_us{stage=\"splice\"}"), "got:\n{text}");
        assert!(
            text.contains("lhnn_stage_us{stage=\"splice\",quantile=\"0.99\"} 2047"),
            "got:\n{text}"
        );
        assert!(text.contains("lhnn_stage_us_count{stage=\"splice\"} 2"), "got:\n{text}");
        assert!(text.contains("lhnn_stage_us_sum{stage=\"splice\"} 1510"), "got:\n{text}");
        assert!(text.contains("# TYPE lhnn_requests_total counter"), "got:\n{text}");
    }

    #[test]
    fn json_is_balanced_and_typed() {
        let json = sample().to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "got:\n{json}");
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"snapshot\": \"lhnn_obs\""));
        assert!(json.contains("\"kind\": \"counter\", \"value\": 7"), "got:\n{json}");
        assert!(json.contains("\"labels\": {\"design\": \"d0\"}"), "got:\n{json}");
        assert!(json.contains("\"kind\": \"histogram\""), "got:\n{json}");
        assert!(json.contains("\"p99\": 2047"), "got:\n{json}");
    }

    #[test]
    fn parse_roundtrips_own_dump() {
        let snap = sample();
        let parsed = parse_prometheus(&snap.to_prometheus());
        let req = parsed.iter().find(|p| p.name == "lhnn_requests_total").unwrap();
        assert_eq!(req.value, 7.0);
        assert!(req.labels.is_empty());
        let design = parsed.iter().find(|p| p.name == "lhnn_design_updates_total").unwrap();
        assert_eq!(design.label("design"), Some("d0"));
        assert_eq!(design.value, 3.0);
        let p99 = parsed
            .iter()
            .find(|p| p.name == "lhnn_stage_us" && p.label("quantile") == Some("0.99"))
            .unwrap();
        assert_eq!(p99.label("stage"), Some("splice"));
        assert_eq!(p99.value, 2047.0);
        let count = parsed.iter().find(|p| p.name == "lhnn_stage_us_count").unwrap();
        assert_eq!(count.value, 2.0);
    }

    #[test]
    fn parser_skips_garbage() {
        let parsed = parse_prometheus("# comment\n\nnot a metric\nok 1\nbad{unclosed 2\n");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].name, "ok");
    }
}
