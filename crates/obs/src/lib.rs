//! `lhnn-obs` — zero-dependency observability for the LHNN serving stack.
//!
//! Three cooperating pieces, all std-only so the crate builds in the
//! offline vendored environment:
//!
//! * [`Registry`] — a lock-light metrics registry of monotone
//!   [`Counter`]s, [`Gauge`]s and fixed-bucket log-scale [`Histogram`]s.
//!   Registration (name → cell) takes a mutex once; recording is a
//!   couple of relaxed atomic ops on a pre-resolved handle, and a
//!   disabled registry reduces every record to one relaxed load.
//! * Span-style **stage tracing** — histogram series
//!   `lhnn_stage_us{stage="..."}` record where a request's latency goes
//!   (queue wait → cache lookup → delta drain → halo dilation → spliced
//!   forward → splice; rebin → graph patch → feature patch → rebuild for
//!   session updates; per-epoch spans for the trainer). The
//!   [`Histogram::start`]/[`Histogram::stop_us`] pair skips the clock
//!   read entirely when recording is off, so the hot path pays nothing.
//! * [`FlightRecorder`] — a bounded ring of recent structured
//!   [`FlightEvent`]s (fallbacks, poisonings, hot-swaps, queue-depth
//!   highs) snapshotable for postmortems.
//!
//! Exposition lives in [`expo`]: [`Snapshot::to_prometheus`] renders a
//! Prometheus-style text dump, [`Snapshot::to_json`] a hand-rolled JSON
//! snapshot (same offline-friendly style as
//! `lhnn_data::write_bench_json`), and [`expo::parse_prometheus`] reads
//! the text form back for postmortem rendering.
//!
//! Instrumentation is timing-only by construction: nothing in this crate
//! touches model inputs or outputs, so enabling or disabling it cannot
//! change a prediction bitwise (the serving crate's parity proptests
//! enforce this end to end).

#![warn(missing_docs)]

pub mod expo;
pub mod flight;
pub mod metrics;

pub use expo::{parse_prometheus, ParsedSeries};
pub use flight::{FlightEvent, FlightEventKind, FlightRecorder};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, Registry, SeriesSnapshot, SeriesValue, Snapshot,
};

/// Canonical stage names of one served predict, in hot-path order.
///
/// `queue` (admission to worker pickup), `cache` (prediction-cache
/// lookup), `drain` (pending session-delta drain), `dilate` (halo
/// dilation through operator transposes), `forward` (masked row-subset
/// forward), `splice` (assembling the served prediction from cached and
/// recomputed rows).
pub const PREDICT_STAGES: [&str; 6] = ["queue", "cache", "drain", "dilate", "forward", "splice"];

/// Canonical stage names of one session update, in pipeline order:
/// rebin → graph patch → feature patch → (structural) rebuild.
pub const UPDATE_STAGES: [&str; 4] = ["rebin", "graph_patch", "feature_patch", "rebuild"];
