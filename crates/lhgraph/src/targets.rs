//! Supervision targets: routing-demand regression and congestion
//! classification labels as per-G-cell matrices.
//!
//! The regression target is capacity-normalised demand (utilisation), so
//! values are comparable across designs with blockages; the classification
//! target is the binary congestion mask (demand > capacity), exactly the
//! labels of Eq. 4/5 in the paper. Uni-channel experiments use the
//! horizontal channel (column 0), duo-channel both columns — matching the
//! paper's uni/duo protocol.

use neurograd::Matrix;
use serde::{Deserialize, Serialize};
use vlsi_route::{Dir, LabelMaps};

/// Per-G-cell targets of one design.
#[derive(Debug, Clone)]
pub struct Targets {
    /// `N_c × 2` capacity-normalised demand (columns: H, V).
    pub demand: Matrix,
    /// `N_c × 2` binary congestion (columns: H, V).
    pub congestion: Matrix,
}

/// Channel selection for training/evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChannelMode {
    /// Horizontal congestion only (paper "uni-channel").
    Uni,
    /// Horizontal + vertical simultaneously (paper "duo-channel").
    Duo,
}

impl ChannelMode {
    /// Number of output channels.
    pub fn channels(self) -> usize {
        match self {
            ChannelMode::Uni => 1,
            ChannelMode::Duo => 2,
        }
    }
}

impl Targets {
    /// Builds targets from router label maps.
    pub fn from_labels(labels: &LabelMaps) -> Self {
        let n = labels.demand_h.len();
        let util_h = labels.utilization(Dir::H);
        let util_v = labels.utilization(Dir::V);
        let cong_h = labels.congestion(Dir::H);
        let cong_v = labels.congestion(Dir::V);
        let mut demand = Matrix::zeros(n, 2);
        let mut congestion = Matrix::zeros(n, 2);
        for i in 0..n {
            demand[(i, 0)] = util_h[i];
            demand[(i, 1)] = util_v[i];
            congestion[(i, 0)] = if cong_h[i] { 1.0 } else { 0.0 };
            congestion[(i, 1)] = if cong_v[i] { 1.0 } else { 0.0 };
        }
        Self { demand, congestion }
    }

    /// Number of G-cells.
    pub fn len(&self) -> usize {
        self.demand.rows()
    }

    /// Whether there are no G-cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The demand target restricted to a channel mode (`N_c × 1` or `× 2`).
    pub fn demand_channels(&self, mode: ChannelMode) -> Matrix {
        match mode {
            ChannelMode::Uni => self.demand.slice_cols(0, 1),
            ChannelMode::Duo => self.demand.clone(),
        }
    }

    /// The congestion target restricted to a channel mode.
    pub fn congestion_channels(&self, mode: ChannelMode) -> Matrix {
        match mode {
            ChannelMode::Uni => self.congestion.slice_cols(0, 1),
            ChannelMode::Duo => self.congestion.clone(),
        }
    }

    /// Fraction of congested entries under a channel mode.
    pub fn congestion_rate(&self, mode: ChannelMode) -> f64 {
        let m = self.congestion_channels(mode);
        if m.is_empty() {
            0.0
        } else {
            f64::from(m.sum()) / m.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels() -> LabelMaps {
        LabelMaps {
            nx: 2,
            ny: 1,
            demand_h: vec![4.0, 1.0],
            demand_v: vec![0.0, 6.0],
            capacity_h: vec![2.0, 2.0],
            capacity_v: vec![2.0, 2.0],
        }
    }

    #[test]
    fn demand_is_capacity_normalised() {
        let t = Targets::from_labels(&labels());
        assert_eq!(t.demand[(0, 0)], 2.0); // 4/2
        assert_eq!(t.demand[(1, 0)], 0.5);
        assert_eq!(t.demand[(1, 1)], 3.0);
    }

    #[test]
    fn congestion_is_binary_threshold() {
        let t = Targets::from_labels(&labels());
        assert_eq!(t.congestion[(0, 0)], 1.0);
        assert_eq!(t.congestion[(1, 0)], 0.0);
        assert_eq!(t.congestion[(0, 1)], 0.0);
        assert_eq!(t.congestion[(1, 1)], 1.0);
    }

    #[test]
    fn channel_modes_select_columns() {
        let t = Targets::from_labels(&labels());
        assert_eq!(t.demand_channels(ChannelMode::Uni).shape(), (2, 1));
        assert_eq!(t.demand_channels(ChannelMode::Duo).shape(), (2, 2));
        assert_eq!(t.congestion_channels(ChannelMode::Uni).shape(), (2, 1));
        assert_eq!(ChannelMode::Uni.channels(), 1);
        assert_eq!(ChannelMode::Duo.channels(), 2);
    }

    #[test]
    fn congestion_rates() {
        let t = Targets::from_labels(&labels());
        assert!((t.congestion_rate(ChannelMode::Uni) - 0.5).abs() < 1e-12);
        assert!((t.congestion_rate(ChannelMode::Duo) - 0.5).abs() < 1e-12);
    }
}
