//! The LH-graph: lattice + hypergraph formulation of a placed circuit.
//!
//! Following §3.1 of the paper, a circuit becomes a heterogeneous graph
//! `G = (V_c, V_n, A, H)`:
//!
//! * `V_c` — one node per G-cell with feature matrix `N_c × d_c`,
//! * `V_n` — one node per G-net (the G-cells covered by a net's pin
//!   bounding box) with feature matrix `N_n × d_n`,
//! * `A`   — the lattice adjacency between 4-neighbouring G-cells,
//! * `H`   — the incidence matrix: `H[i,j] = 1` iff G-cell `i` is inside
//!   G-net `j`.
//!
//! The degree matrices `D` (G-cell hyperdegree), `B` (G-net size) and `P`
//! (lattice degree) define the paper's aggregation operators `D⁻¹H`,
//! `B⁻¹Hᵀ` and `P⁻¹A`, pre-built here as row-normalised CSR matrices.

use std::sync::Arc;

use neurograd::CsrMatrix;
use vlsi_netlist::{Circuit, GcellGrid, NetId, Placement};

use crate::error::{LhGraphError, Result};

/// Build-time options.
#[derive(Debug, Clone, PartialEq)]
pub struct LhGraphConfig {
    /// G-nets covering more than this fraction of all G-cells are dropped
    /// (the paper removes G-nets above 0.25 % of the ≈343K G-cells; the
    /// default here plays the same role at our much smaller grids).
    pub max_gnet_fraction: f32,
}

impl Default for LhGraphConfig {
    fn default() -> Self {
        Self { max_gnet_fraction: 0.05 }
    }
}

/// The structural part of an LH-graph (features live in
/// [`crate::features::FeatureSet`]).
#[derive(Debug, Clone)]
pub struct LhGraph {
    nx: usize,
    ny: usize,
    /// `H`: `N_c × N_n` incidence.
    incidence: Arc<CsrMatrix>,
    /// `A`: `N_c × N_c` lattice adjacency.
    lattice: Arc<CsrMatrix>,
    /// `G_nc = H` — sum aggregation G-net → G-cell (Eq. 1).
    gnc_sum: Arc<CsrMatrix>,
    /// `D⁻¹H` — mean aggregation G-net → G-cell (HyperMP).
    gnc_mean: Arc<CsrMatrix>,
    /// `B⁻¹Hᵀ` — mean aggregation G-cell → G-net (HyperMP).
    gcn_mean: Arc<CsrMatrix>,
    /// `P⁻¹A` — mean aggregation over lattice neighbours (LatticeMP).
    lattice_mean: Arc<CsrMatrix>,
    /// Net id per kept G-net (row of `V_n` → circuit net).
    kept_nets: Vec<NetId>,
    /// Number of G-nets dropped by the size filter.
    dropped_gnets: usize,
}

impl LhGraph {
    /// Builds the LH-graph for a placed circuit.
    ///
    /// # Errors
    ///
    /// Returns [`LhGraphError::EmptyGraph`] if the grid has no G-cells or
    /// no net survives the size filter while the circuit has nets.
    pub fn build(
        circuit: &Circuit,
        placement: &Placement,
        grid: &GcellGrid,
        cfg: &LhGraphConfig,
    ) -> Result<Self> {
        let n_c = grid.num_gcells();
        if n_c == 0 {
            return Err(LhGraphError::EmptyGraph("grid has no g-cells".into()));
        }
        let max_area = ((n_c as f32) * cfg.max_gnet_fraction).max(1.0) as usize;

        // G-nets: bbox span per net, filtered by size.
        let mut kept_nets = Vec::new();
        let mut triplets: Vec<(usize, usize, f32)> = Vec::new();
        let mut dropped = 0usize;
        for (ni, net) in circuit.nets().iter().enumerate() {
            let bbox = placement.net_bbox(net);
            let Some((lo, hi)) = grid.span(&bbox) else {
                dropped += 1;
                continue;
            };
            let area = ((hi.gx - lo.gx + 1) as usize) * ((hi.gy - lo.gy + 1) as usize);
            if area > max_area {
                dropped += 1;
                continue;
            }
            let j = kept_nets.len();
            for c in grid.iter_span(lo, hi) {
                triplets.push((grid.index(c), j, 1.0));
            }
            kept_nets.push(NetId(ni as u32));
        }
        let n_n = kept_nets.len();
        if n_n == 0 && circuit.num_nets() > 0 {
            return Err(LhGraphError::EmptyGraph(
                "size filter removed every g-net; raise max_gnet_fraction".into(),
            ));
        }
        let incidence = CsrMatrix::from_triplets(n_c, n_n.max(1), &triplets);

        // Lattice adjacency.
        let mut lat_triplets = Vec::with_capacity(4 * n_c);
        for idx in 0..n_c {
            let c = grid.coord(idx);
            for nb in grid.neighbors(c) {
                lat_triplets.push((idx, grid.index(nb), 1.0));
            }
        }
        let lattice = CsrMatrix::from_triplets(n_c, n_c, &lat_triplets);

        let gnc_sum = incidence.clone();
        let gnc_mean = incidence.row_normalized();
        let gcn_mean = incidence.transpose().row_normalized();
        let lattice_mean = lattice.row_normalized();

        Ok(Self {
            nx: grid.nx() as usize,
            ny: grid.ny() as usize,
            incidence: Arc::new(incidence),
            lattice: Arc::new(lattice),
            gnc_sum: Arc::new(gnc_sum),
            gnc_mean: Arc::new(gnc_mean),
            gcn_mean: Arc::new(gcn_mean),
            lattice_mean: Arc::new(lattice_mean),
            kept_nets,
            dropped_gnets: dropped,
        })
    }

    /// Number of G-cell nodes (`N_c`).
    pub fn num_gcells(&self) -> usize {
        self.nx * self.ny
    }

    /// Number of G-net nodes (`N_n`).
    pub fn num_gnets(&self) -> usize {
        self.kept_nets.len()
    }

    /// Grid columns.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid rows.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// The incidence matrix `H` (`N_c × N_n`).
    pub fn incidence(&self) -> &Arc<CsrMatrix> {
        &self.incidence
    }

    /// The lattice adjacency `A` (`N_c × N_c`).
    pub fn lattice(&self) -> &Arc<CsrMatrix> {
        &self.lattice
    }

    /// Sum aggregation G-net → G-cell (`G_nc = H`, Eq. 1).
    pub fn gnc_sum(&self) -> &Arc<CsrMatrix> {
        &self.gnc_sum
    }

    /// Mean aggregation G-net → G-cell (`D⁻¹H`).
    pub fn gnc_mean(&self) -> &Arc<CsrMatrix> {
        &self.gnc_mean
    }

    /// Mean aggregation G-cell → G-net (`B⁻¹Hᵀ`).
    pub fn gcn_mean(&self) -> &Arc<CsrMatrix> {
        &self.gcn_mean
    }

    /// Mean aggregation over lattice neighbours (`P⁻¹A`).
    pub fn lattice_mean(&self) -> &Arc<CsrMatrix> {
        &self.lattice_mean
    }

    /// The circuit net behind each G-net row.
    pub fn kept_nets(&self) -> &[NetId] {
        &self.kept_nets
    }

    /// Number of nets dropped by the size filter.
    pub fn dropped_gnets(&self) -> usize {
        self.dropped_gnets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_netlist::{Cell, Circuit, Net, Pin, Point, Rect};

    /// 4×4 grid, 2 nets: one small (2×1 g-cells), one large (3×3).
    fn sample() -> (Circuit, Placement, GcellGrid) {
        let die = Rect::new(0.0, 0.0, 8.0, 8.0);
        let grid = GcellGrid::new(die, 4, 4);
        let mut c = Circuit::new("s", die);
        let a = c.add_cell(Cell::movable("a", 0.2, 0.2));
        let b = c.add_cell(Cell::movable("b", 0.2, 0.2));
        let d = c.add_cell(Cell::movable("d", 0.2, 0.2));
        let e = c.add_cell(Cell::movable("e", 0.2, 0.2));
        c.add_net(Net::new("small", vec![Pin::at_center(a), Pin::at_center(b)]));
        c.add_net(Net::new("large", vec![Pin::at_center(d), Pin::at_center(e)]));
        let mut p = Placement::zeroed(4);
        p.set_position(a, Point::new(1.0, 1.0)); // (0,0)
        p.set_position(b, Point::new(3.0, 1.0)); // (1,0)
        p.set_position(d, Point::new(1.0, 3.0)); // (0,1)
        p.set_position(e, Point::new(5.0, 7.0)); // (2,3)
        (c, p, grid)
    }

    #[test]
    fn incidence_matches_bounding_boxes() {
        let (c, p, grid) = sample();
        let g = LhGraph::build(&c, &p, &grid, &LhGraphConfig { max_gnet_fraction: 1.0 }).unwrap();
        assert_eq!(g.num_gcells(), 16);
        assert_eq!(g.num_gnets(), 2);
        let h = g.incidence().to_dense();
        // small net: cells (0,0) and (1,0) = indices 0, 1
        assert_eq!(h[(0, 0)], 1.0);
        assert_eq!(h[(1, 0)], 1.0);
        assert_eq!(h[(2, 0)], 0.0);
        // large net: 3 cols x 3 rows from (0,1) to (2,3) = 9 cells
        let col1: f32 = (0..16).map(|i| h[(i, 1)]).sum();
        assert_eq!(col1, 9.0);
    }

    #[test]
    fn size_filter_drops_large_gnets() {
        let (c, p, grid) = sample();
        // max area = 16 * 0.2 = 3.2 -> 3 cells; the 9-cell net is dropped
        let g = LhGraph::build(&c, &p, &grid, &LhGraphConfig { max_gnet_fraction: 0.2 }).unwrap();
        assert_eq!(g.num_gnets(), 1);
        assert_eq!(g.dropped_gnets(), 1);
        assert_eq!(g.kept_nets()[0], NetId(0));
    }

    #[test]
    fn lattice_degrees_are_2_3_4() {
        let (c, p, grid) = sample();
        let g = LhGraph::build(&c, &p, &grid, &LhGraphConfig { max_gnet_fraction: 1.0 }).unwrap();
        let degrees = g.lattice().row_sums();
        // corners have 2 neighbours, edges 3, interior 4
        assert_eq!(degrees[0], 2.0); // (0,0)
        assert_eq!(degrees[1], 3.0); // (1,0)
        assert_eq!(degrees[5], 4.0); // (1,1)
        let total: f32 = degrees.iter().sum();
        assert_eq!(total, 2.0 * 24.0); // 24 undirected edges in a 4x4 lattice
    }

    #[test]
    fn lattice_is_symmetric() {
        let (c, p, grid) = sample();
        let g = LhGraph::build(&c, &p, &grid, &LhGraphConfig { max_gnet_fraction: 1.0 }).unwrap();
        let a = g.lattice().to_dense();
        for i in 0..16 {
            for j in 0..16 {
                assert_eq!(a[(i, j)], a[(j, i)]);
            }
        }
    }

    #[test]
    fn operators_are_row_stochastic() {
        let (c, p, grid) = sample();
        let g = LhGraph::build(&c, &p, &grid, &LhGraphConfig { max_gnet_fraction: 1.0 }).unwrap();
        for sums in [g.gcn_mean().row_sums(), g.lattice_mean().row_sums()] {
            for s in sums {
                assert!((s - 1.0).abs() < 1e-5, "row sum {s}");
            }
        }
        // gnc_mean rows are 1 for covered g-cells, 0 for uncovered
        for s in g.gnc_mean().row_sums() {
            assert!(s.abs() < 1e-5 || (s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn gcn_mean_shape_is_transposed() {
        let (c, p, grid) = sample();
        let g = LhGraph::build(&c, &p, &grid, &LhGraphConfig { max_gnet_fraction: 1.0 }).unwrap();
        assert_eq!(g.gcn_mean().shape(), (2, 16));
        assert_eq!(g.gnc_mean().shape(), (16, 2));
        assert_eq!(g.gnc_sum().shape(), (16, 2));
    }

    #[test]
    fn empty_filter_result_is_an_error() {
        let (c, p, grid) = sample();
        // fraction so small that max_area = 1 g-cell; both nets span > 1
        let err = LhGraph::build(&c, &p, &grid, &LhGraphConfig { max_gnet_fraction: 1e-9 });
        assert!(err.is_err());
    }

    #[test]
    fn circuit_without_nets_builds_empty_hypergraph() {
        let die = Rect::new(0.0, 0.0, 4.0, 4.0);
        let grid = GcellGrid::new(die, 2, 2);
        let c = Circuit::new("none", die);
        let p = Placement::zeroed(0);
        let g = LhGraph::build(&c, &p, &grid, &LhGraphConfig::default()).unwrap();
        assert_eq!(g.num_gnets(), 0);
        assert_eq!(g.num_gcells(), 4);
    }
}
