//! The LH-graph: lattice + hypergraph formulation of a placed circuit.
//!
//! Following §3.1 of the paper, a circuit becomes a heterogeneous graph
//! `G = (V_c, V_n, A, H)`:
//!
//! * `V_c` — one node per G-cell with feature matrix `N_c × d_c`,
//! * `V_n` — one node per G-net (the G-cells covered by a net's pin
//!   bounding box) with feature matrix `N_n × d_n`,
//! * `A`   — the lattice adjacency between 4-neighbouring G-cells,
//! * `H`   — the incidence matrix: `H[i,j] = 1` iff G-cell `i` is inside
//!   G-net `j`.
//!
//! The degree matrices `D` (G-cell hyperdegree), `B` (G-net size) and `P`
//! (lattice degree) define the paper's aggregation operators `D⁻¹H`,
//! `B⁻¹Hᵀ` and `P⁻¹A`, pre-built here as row-normalised CSR matrices.

use std::sync::Arc;

use neurograd::CsrMatrix;
use vlsi_netlist::{Circuit, DirtyReport, GcellGrid, GcellSpan, NetId, Placement};

use crate::error::{LhGraphError, Result};

/// Build-time options.
#[derive(Debug, Clone, PartialEq)]
pub struct LhGraphConfig {
    /// G-nets covering more than this fraction of all G-cells are dropped
    /// (the paper removes G-nets above 0.25 % of the ≈343K G-cells; the
    /// default here plays the same role at our much smaller grids).
    pub max_gnet_fraction: f32,
}

impl Default for LhGraphConfig {
    fn default() -> Self {
        Self { max_gnet_fraction: 0.05 }
    }
}

impl LhGraphConfig {
    /// The G-net size filter threshold, in G-cells, for a grid with
    /// `num_gcells` cells: nets covering more are dropped.
    pub fn max_gnet_area(&self, num_gcells: usize) -> usize {
        ((num_gcells as f32) * self.max_gnet_fraction).max(1.0) as usize
    }
}

/// The structural part of an LH-graph (features live in
/// [`crate::features::FeatureSet`]).
#[derive(Debug, Clone)]
pub struct LhGraph {
    nx: usize,
    ny: usize,
    /// `H`: `N_c × N_n` incidence.
    incidence: Arc<CsrMatrix>,
    /// `A`: `N_c × N_c` lattice adjacency.
    lattice: Arc<CsrMatrix>,
    /// `G_nc = H` — sum aggregation G-net → G-cell (Eq. 1).
    gnc_sum: Arc<CsrMatrix>,
    /// `D⁻¹H` — mean aggregation G-net → G-cell (HyperMP).
    gnc_mean: Arc<CsrMatrix>,
    /// `B⁻¹Hᵀ` — mean aggregation G-cell → G-net (HyperMP).
    gcn_mean: Arc<CsrMatrix>,
    /// `P⁻¹A` — mean aggregation over lattice neighbours (LatticeMP).
    lattice_mean: Arc<CsrMatrix>,
    /// Net id per kept G-net (row of `V_n` → circuit net), ascending.
    kept_nets: Arc<Vec<NetId>>,
    /// The covered G-cell span per kept G-net (what `apply_delta` diffs
    /// against when a placement perturbation re-bins a net).
    spans: Arc<Vec<GcellSpan>>,
    /// Number of G-nets dropped by the size filter.
    dropped_gnets: usize,
}

/// How many G-cells an inclusive span covers.
fn span_area((lo, hi): GcellSpan) -> usize {
    ((hi.gx - lo.gx + 1) as usize) * ((hi.gy - lo.gy + 1) as usize)
}

/// The result of a successful [`LhGraph::apply_delta`]: the patched graph
/// plus the dirty sets a feature patch needs.
#[derive(Debug)]
pub struct GraphPatch {
    /// The patched graph. Matrices untouched by the delta are shared with
    /// the source graph via `Arc` — only dirty rows were rebuilt.
    pub graph: LhGraph,
    /// Kept-net columns whose span changed (sorted ascending).
    pub dirty_cols: Vec<usize>,
    /// G-cell rows whose incidence entries (and therefore net-density
    /// features) changed: the union of old and new spans of every dirty
    /// net (sorted ascending).
    pub dirty_rows: Vec<usize>,
}

/// The outcome of [`LhGraph::apply_delta`].
#[derive(Debug)]
pub enum DeltaOutcome {
    /// The graph was patched incrementally; results are bitwise identical
    /// to a from-scratch [`LhGraph::build`] at the new placement.
    Patched(GraphPatch),
    /// The delta moved a net across the size filter, so G-net columns
    /// would renumber: the caller must rebuild from scratch. Carries a
    /// human-readable reason.
    Structural(String),
}

impl LhGraph {
    /// Builds the LH-graph for a placed circuit.
    ///
    /// # Errors
    ///
    /// Returns [`LhGraphError::EmptyGraph`] if the grid has no G-cells or
    /// no net survives the size filter while the circuit has nets.
    pub fn build(
        circuit: &Circuit,
        placement: &Placement,
        grid: &GcellGrid,
        cfg: &LhGraphConfig,
    ) -> Result<Self> {
        let n_c = grid.num_gcells();
        if n_c == 0 {
            return Err(LhGraphError::EmptyGraph("grid has no g-cells".into()));
        }
        if placement.len() < circuit.num_cells() {
            return Err(LhGraphError::DimensionMismatch(format!(
                "placement has {} positions for {} cells",
                placement.len(),
                circuit.num_cells()
            )));
        }
        let max_area = cfg.max_gnet_area(n_c);

        // G-nets: bbox span per net, filtered by size.
        let mut kept_nets = Vec::new();
        let mut spans = Vec::new();
        let mut triplets: Vec<(usize, usize, f32)> = Vec::new();
        let mut dropped = 0usize;
        for (ni, net) in circuit.nets().iter().enumerate() {
            let bbox = placement.net_bbox(net);
            let Some((lo, hi)) = grid.span(&bbox) else {
                dropped += 1;
                continue;
            };
            if span_area((lo, hi)) > max_area {
                dropped += 1;
                continue;
            }
            let j = kept_nets.len();
            for c in grid.iter_span(lo, hi) {
                triplets.push((grid.index(c), j, 1.0));
            }
            kept_nets.push(NetId(ni as u32));
            spans.push((lo, hi));
        }
        let n_n = kept_nets.len();
        if n_n == 0 && circuit.num_nets() > 0 {
            return Err(LhGraphError::EmptyGraph(
                "size filter removed every g-net; raise max_gnet_fraction".into(),
            ));
        }
        let incidence = CsrMatrix::from_triplets(n_c, n_n.max(1), &triplets);

        // Lattice adjacency.
        let mut lat_triplets = Vec::with_capacity(4 * n_c);
        for idx in 0..n_c {
            let c = grid.coord(idx);
            for nb in grid.neighbors(c) {
                lat_triplets.push((idx, grid.index(nb), 1.0));
            }
        }
        let lattice = CsrMatrix::from_triplets(n_c, n_c, &lat_triplets);

        let gnc_sum = incidence.clone();
        let gnc_mean = incidence.row_normalized();
        let gcn_mean = incidence.transpose().row_normalized();
        let lattice_mean = lattice.row_normalized();

        Ok(Self {
            nx: grid.nx() as usize,
            ny: grid.ny() as usize,
            incidence: Arc::new(incidence),
            lattice: Arc::new(lattice),
            gnc_sum: Arc::new(gnc_sum),
            gnc_mean: Arc::new(gnc_mean),
            gcn_mean: Arc::new(gcn_mean),
            lattice_mean: Arc::new(lattice_mean),
            kept_nets: Arc::new(kept_nets),
            spans: Arc::new(spans),
            dropped_gnets: dropped,
        })
    }

    /// Patches this graph for a placement delta, given the re-binning
    /// report of [`vlsi_netlist::rebin_delta`].
    ///
    /// Only the incidence-derived rows touched by the dirty nets are
    /// rebuilt; the lattice operators, the kept-net mapping and every
    /// untouched CSR row carry over (shared via `Arc`). The patched graph
    /// is **bitwise identical** to `LhGraph::build` at the new placement —
    /// the contract the incremental-pipeline proptests enforce.
    ///
    /// Returns [`DeltaOutcome::Structural`] when a net crossed the size
    /// filter (G-net columns would renumber); the caller falls back to a
    /// full rebuild.
    ///
    /// # Errors
    ///
    /// Returns [`LhGraphError::GridShape`] if `grid` is not the grid this
    /// graph was built on.
    pub fn apply_delta(
        &self,
        grid: &GcellGrid,
        cfg: &LhGraphConfig,
        report: &DirtyReport,
    ) -> Result<DeltaOutcome> {
        if self.nx != grid.nx() as usize || self.ny != grid.ny() as usize {
            return Err(LhGraphError::grid_shape(
                (self.nx, self.ny),
                (grid.nx() as usize, grid.ny() as usize),
            ));
        }
        let max_area = cfg.max_gnet_area(self.num_gcells());

        // Classify each re-binned net: patchable span change, no-op (stays
        // dropped) or structural (crosses the size filter).
        let mut dirty: Vec<(usize, GcellSpan)> = Vec::new();
        for rb in &report.net_rebins {
            let col = self.net_column(rb.net);
            let new_kept = rb.new_span.is_some_and(|s| span_area(s) <= max_area);
            match (col, new_kept) {
                (Some(j), true) => {
                    let ns = rb.new_span.expect("kept net has a span");
                    if self.spans[j] != ns {
                        dirty.push((j, ns));
                    }
                }
                (None, false) => {} // dropped before and after: no column
                (Some(j), false) => {
                    return Ok(DeltaOutcome::Structural(format!(
                        "net {} (g-net column {j}) no longer passes the size filter",
                        rb.net.0
                    )));
                }
                (None, true) => {
                    return Ok(DeltaOutcome::Structural(format!(
                        "net {} newly passes the size filter",
                        rb.net.0
                    )));
                }
            }
        }
        dirty.sort_unstable_by_key(|&(j, _)| j);
        if dirty.is_empty() {
            return Ok(DeltaOutcome::Patched(GraphPatch {
                graph: self.clone(),
                dirty_cols: Vec::new(),
                dirty_rows: Vec::new(),
            }));
        }

        // Dirty G-cell rows: union of old and new spans of dirty nets.
        let mut rows: Vec<usize> = Vec::new();
        for &(j, ns) in &dirty {
            let os = self.spans[j];
            rows.extend(grid.iter_span(os.0, os.1).map(|c| grid.index(c)));
            rows.extend(grid.iter_span(ns.0, ns.1).map(|c| grid.index(c)));
        }
        rows.sort_unstable();
        rows.dedup();

        // Incidence rows: keep clean columns, merge in the dirty nets that
        // now cover the row. Iterating dirty nets in ascending column
        // order fills each row's addition list pre-sorted, so the rebuild
        // is a linear merge of two ascending streams — no per-row sort,
        // same (column-sorted) layout `from_triplets` produces.
        let mut dirty_col = vec![false; self.incidence.cols()];
        for &(j, _) in &dirty {
            dirty_col[j] = true;
        }
        let mut additions: Vec<Vec<usize>> = vec![Vec::new(); rows.len()];
        for &(j, ns) in &dirty {
            for c in grid.iter_span(ns.0, ns.1) {
                let slot = rows.binary_search(&grid.index(c)).expect("span cell is a dirty row");
                additions[slot].push(j);
            }
        }
        let incidence_rows: Vec<(usize, Vec<(usize, f32)>)> = rows
            .iter()
            .zip(&additions)
            .map(|(&r, add)| {
                let mut entries = Vec::with_capacity(self.incidence.row_nnz(r) + add.len());
                let mut add_it = add.iter().copied().peekable();
                for (c, v) in self.incidence.row_entries(r) {
                    if dirty_col[c] {
                        continue;
                    }
                    while add_it.peek().is_some_and(|&j| j < c) {
                        entries.push((add_it.next().expect("peeked"), 1.0));
                    }
                    entries.push((c, v));
                }
                entries.extend(add_it.map(|j| (j, 1.0)));
                (r, entries)
            })
            .collect();
        let incidence = Arc::new(self.incidence.with_rows_replaced(&incidence_rows));

        // `D⁻¹H` rows share the incidence pattern with value `1/row-degree`
        // — exactly what `row_normalized` yields on a 0/1 row (the sum of
        // `c` ones is exactly `c as f32` for any realistic degree).
        let mean_rows: Vec<(usize, Vec<(usize, f32)>)> = incidence_rows
            .iter()
            .map(|(r, es)| {
                let inv = if es.is_empty() { 0.0 } else { 1.0 / es.len() as f32 };
                (*r, es.iter().map(|&(c, _)| (c, inv)).collect())
            })
            .collect();
        let gnc_mean = Arc::new(self.gnc_mean.with_rows_replaced(&mean_rows));

        // `B⁻¹Hᵀ` rows are per-net: the new span's cells in ascending
        // index order with value `1/area` — the transpose-then-normalise
        // result of the full build.
        let net_rows: Vec<(usize, Vec<(usize, f32)>)> = dirty
            .iter()
            .map(|&(j, ns)| {
                let inv = 1.0 / span_area(ns) as f32;
                (j, grid.iter_span(ns.0, ns.1).map(|c| (grid.index(c), inv)).collect())
            })
            .collect();
        let gcn_mean = Arc::new(self.gcn_mean.with_rows_replaced(&net_rows));

        let mut spans = (*self.spans).clone();
        for &(j, ns) in &dirty {
            spans[j] = ns;
        }
        let graph = LhGraph {
            nx: self.nx,
            ny: self.ny,
            gnc_sum: Arc::clone(&incidence),
            incidence,
            lattice: Arc::clone(&self.lattice),
            gnc_mean,
            gcn_mean,
            lattice_mean: Arc::clone(&self.lattice_mean),
            kept_nets: Arc::clone(&self.kept_nets),
            spans: Arc::new(spans),
            dropped_gnets: self.dropped_gnets,
        };
        Ok(DeltaOutcome::Patched(GraphPatch {
            graph,
            dirty_cols: dirty.iter().map(|&(j, _)| j).collect(),
            dirty_rows: rows,
        }))
    }

    /// Number of G-cell nodes (`N_c`).
    pub fn num_gcells(&self) -> usize {
        self.nx * self.ny
    }

    /// Number of G-net nodes (`N_n`).
    pub fn num_gnets(&self) -> usize {
        self.kept_nets.len()
    }

    /// Grid columns.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid rows.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// The incidence matrix `H` (`N_c × N_n`).
    pub fn incidence(&self) -> &Arc<CsrMatrix> {
        &self.incidence
    }

    /// The lattice adjacency `A` (`N_c × N_c`).
    pub fn lattice(&self) -> &Arc<CsrMatrix> {
        &self.lattice
    }

    /// Sum aggregation G-net → G-cell (`G_nc = H`, Eq. 1).
    pub fn gnc_sum(&self) -> &Arc<CsrMatrix> {
        &self.gnc_sum
    }

    /// Mean aggregation G-net → G-cell (`D⁻¹H`).
    pub fn gnc_mean(&self) -> &Arc<CsrMatrix> {
        &self.gnc_mean
    }

    /// Mean aggregation G-cell → G-net (`B⁻¹Hᵀ`).
    pub fn gcn_mean(&self) -> &Arc<CsrMatrix> {
        &self.gcn_mean
    }

    /// Mean aggregation over lattice neighbours (`P⁻¹A`).
    pub fn lattice_mean(&self) -> &Arc<CsrMatrix> {
        &self.lattice_mean
    }

    /// The circuit net behind each G-net row.
    pub fn kept_nets(&self) -> &[NetId] {
        &self.kept_nets
    }

    /// The G-net column of a circuit net, or `None` if the size filter
    /// dropped it (O(log n) — `kept_nets` is ascending).
    pub fn net_column(&self, net: NetId) -> Option<usize> {
        self.kept_nets.binary_search(&net).ok()
    }

    /// The covered G-cell span of a kept G-net column.
    ///
    /// # Panics
    ///
    /// Panics if `col >= num_gnets()`.
    pub fn span_of(&self, col: usize) -> GcellSpan {
        self.spans[col]
    }

    /// The covered span per kept G-net, indexed by column.
    pub fn spans(&self) -> &[GcellSpan] {
        &self.spans
    }

    /// Number of nets dropped by the size filter.
    pub fn dropped_gnets(&self) -> usize {
        self.dropped_gnets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_netlist::{Cell, Circuit, Net, Pin, Point, Rect};

    /// 4×4 grid, 2 nets: one small (2×1 g-cells), one large (3×3).
    fn sample() -> (Circuit, Placement, GcellGrid) {
        let die = Rect::new(0.0, 0.0, 8.0, 8.0);
        let grid = GcellGrid::new(die, 4, 4);
        let mut c = Circuit::new("s", die);
        let a = c.add_cell(Cell::movable("a", 0.2, 0.2));
        let b = c.add_cell(Cell::movable("b", 0.2, 0.2));
        let d = c.add_cell(Cell::movable("d", 0.2, 0.2));
        let e = c.add_cell(Cell::movable("e", 0.2, 0.2));
        c.add_net(Net::new("small", vec![Pin::at_center(a), Pin::at_center(b)]));
        c.add_net(Net::new("large", vec![Pin::at_center(d), Pin::at_center(e)]));
        let mut p = Placement::zeroed(4);
        p.set_position(a, Point::new(1.0, 1.0)); // (0,0)
        p.set_position(b, Point::new(3.0, 1.0)); // (1,0)
        p.set_position(d, Point::new(1.0, 3.0)); // (0,1)
        p.set_position(e, Point::new(5.0, 7.0)); // (2,3)
        (c, p, grid)
    }

    #[test]
    fn incidence_matches_bounding_boxes() {
        let (c, p, grid) = sample();
        let g = LhGraph::build(&c, &p, &grid, &LhGraphConfig { max_gnet_fraction: 1.0 }).unwrap();
        assert_eq!(g.num_gcells(), 16);
        assert_eq!(g.num_gnets(), 2);
        let h = g.incidence().to_dense();
        // small net: cells (0,0) and (1,0) = indices 0, 1
        assert_eq!(h[(0, 0)], 1.0);
        assert_eq!(h[(1, 0)], 1.0);
        assert_eq!(h[(2, 0)], 0.0);
        // large net: 3 cols x 3 rows from (0,1) to (2,3) = 9 cells
        let col1: f32 = (0..16).map(|i| h[(i, 1)]).sum();
        assert_eq!(col1, 9.0);
    }

    #[test]
    fn size_filter_drops_large_gnets() {
        let (c, p, grid) = sample();
        // max area = 16 * 0.2 = 3.2 -> 3 cells; the 9-cell net is dropped
        let g = LhGraph::build(&c, &p, &grid, &LhGraphConfig { max_gnet_fraction: 0.2 }).unwrap();
        assert_eq!(g.num_gnets(), 1);
        assert_eq!(g.dropped_gnets(), 1);
        assert_eq!(g.kept_nets()[0], NetId(0));
    }

    #[test]
    fn lattice_degrees_are_2_3_4() {
        let (c, p, grid) = sample();
        let g = LhGraph::build(&c, &p, &grid, &LhGraphConfig { max_gnet_fraction: 1.0 }).unwrap();
        let degrees = g.lattice().row_sums();
        // corners have 2 neighbours, edges 3, interior 4
        assert_eq!(degrees[0], 2.0); // (0,0)
        assert_eq!(degrees[1], 3.0); // (1,0)
        assert_eq!(degrees[5], 4.0); // (1,1)
        let total: f32 = degrees.iter().sum();
        assert_eq!(total, 2.0 * 24.0); // 24 undirected edges in a 4x4 lattice
    }

    #[test]
    fn lattice_is_symmetric() {
        let (c, p, grid) = sample();
        let g = LhGraph::build(&c, &p, &grid, &LhGraphConfig { max_gnet_fraction: 1.0 }).unwrap();
        let a = g.lattice().to_dense();
        for i in 0..16 {
            for j in 0..16 {
                assert_eq!(a[(i, j)], a[(j, i)]);
            }
        }
    }

    #[test]
    fn operators_are_row_stochastic() {
        let (c, p, grid) = sample();
        let g = LhGraph::build(&c, &p, &grid, &LhGraphConfig { max_gnet_fraction: 1.0 }).unwrap();
        for sums in [g.gcn_mean().row_sums(), g.lattice_mean().row_sums()] {
            for s in sums {
                assert!((s - 1.0).abs() < 1e-5, "row sum {s}");
            }
        }
        // gnc_mean rows are 1 for covered g-cells, 0 for uncovered
        for s in g.gnc_mean().row_sums() {
            assert!(s.abs() < 1e-5 || (s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn gcn_mean_shape_is_transposed() {
        let (c, p, grid) = sample();
        let g = LhGraph::build(&c, &p, &grid, &LhGraphConfig { max_gnet_fraction: 1.0 }).unwrap();
        assert_eq!(g.gcn_mean().shape(), (2, 16));
        assert_eq!(g.gnc_mean().shape(), (16, 2));
        assert_eq!(g.gnc_sum().shape(), (16, 2));
    }

    #[test]
    fn empty_filter_result_is_an_error() {
        let (c, p, grid) = sample();
        // fraction so small that max_area = 1 g-cell; both nets span > 1
        let err = LhGraph::build(&c, &p, &grid, &LhGraphConfig { max_gnet_fraction: 1e-9 });
        assert!(err.is_err());
    }

    #[test]
    fn circuit_without_nets_builds_empty_hypergraph() {
        let die = Rect::new(0.0, 0.0, 4.0, 4.0);
        let grid = GcellGrid::new(die, 2, 2);
        let c = Circuit::new("none", die);
        let p = Placement::zeroed(0);
        let g = LhGraph::build(&c, &p, &grid, &LhGraphConfig::default()).unwrap();
        assert_eq!(g.num_gnets(), 0);
        assert_eq!(g.num_gcells(), 4);
    }
}
