//! The LH-graph: lattice + hypergraph formulation of a placed circuit.
//!
//! Following §3.1 of the paper, a circuit becomes a heterogeneous graph
//! `G = (V_c, V_n, A, H)`:
//!
//! * `V_c` — one node per G-cell with feature matrix `N_c × d_c`,
//! * `V_n` — one node per G-net (the G-cells covered by a net's pin
//!   bounding box) with feature matrix `N_n × d_n`,
//! * `A`   — the lattice adjacency between 4-neighbouring G-cells,
//! * `H`   — the incidence matrix: `H[i,j] = 1` iff G-cell `i` is inside
//!   G-net `j`.
//!
//! The degree matrices `D` (G-cell hyperdegree), `B` (G-net size) and `P`
//! (lattice degree) define the paper's aggregation operators `D⁻¹H`,
//! `B⁻¹Hᵀ` and `P⁻¹A`, pre-built here as row-normalised CSR matrices.
//!
//! # Stable G-net columns
//!
//! G-net columns have **stable identities** across placement deltas: a
//! net leaving the size filter becomes a *tombstone* (its column is
//! retained with incidence rows zeroed and mean-normalisations masked),
//! a net re-entering *revives* its old column, and a net that never had
//! a column *appends* one at the end. Filter crossings therefore patch
//! instead of forcing a rebuild; the only event that renumbers columns
//! is a lazy *compaction* once the tombstone fraction exceeds
//! [`LhGraphConfig::max_tombstone_fraction`] (reported as
//! [`StructuralReason::Compaction`], after which a plain
//! [`LhGraph::build`] restores the canonical ascending layout).

use std::sync::Arc;

use neurograd::CsrMatrix;
use vlsi_netlist::{span_cells, Circuit, DirtyReport, GcellGrid, GcellSpan, NetId, Placement};

use crate::error::{LhGraphError, Result};

/// Sentinel in the net → column index: this net has no G-net column.
const NO_COLUMN: u32 = u32::MAX;

/// Build-time options.
#[derive(Debug, Clone, PartialEq)]
pub struct LhGraphConfig {
    /// G-nets covering more than this fraction of all G-cells are dropped
    /// (the paper removes G-nets above 0.25 % of the ≈343K G-cells; the
    /// default here plays the same role at our much smaller grids).
    pub max_gnet_fraction: f32,
    /// Lazy-compaction threshold: once more than this fraction of the
    /// G-net column space is tombstoned, [`LhGraph::apply_delta`] reports
    /// [`StructuralReason::Compaction`] and the caller rebuilds (the only
    /// event that renumbers columns). `>= 1.0` never compacts; `0.0`
    /// compacts on the first tombstone (the pre-stable-columns behaviour).
    pub max_tombstone_fraction: f32,
}

impl Default for LhGraphConfig {
    fn default() -> Self {
        Self { max_gnet_fraction: 0.05, max_tombstone_fraction: 0.25 }
    }
}

impl LhGraphConfig {
    /// The G-net size filter threshold, in G-cells, for a grid with
    /// `num_gcells` cells: nets covering more are dropped.
    pub fn max_gnet_area(&self, num_gcells: usize) -> usize {
        ((num_gcells as f32) * self.max_gnet_fraction).max(1.0) as usize
    }
}

/// The structural part of an LH-graph (features live in
/// [`crate::features::FeatureSet`]).
#[derive(Debug, Clone)]
pub struct LhGraph {
    nx: usize,
    ny: usize,
    /// `H`: `N_c × N_n` incidence.
    incidence: Arc<CsrMatrix>,
    /// `A`: `N_c × N_c` lattice adjacency.
    lattice: Arc<CsrMatrix>,
    /// `G_nc = H` — sum aggregation G-net → G-cell (Eq. 1).
    gnc_sum: Arc<CsrMatrix>,
    /// `D⁻¹H` — mean aggregation G-net → G-cell (HyperMP).
    gnc_mean: Arc<CsrMatrix>,
    /// `B⁻¹Hᵀ` — mean aggregation G-cell → G-net (HyperMP).
    gcn_mean: Arc<CsrMatrix>,
    /// `P⁻¹A` — mean aggregation over lattice neighbours (LatticeMP).
    lattice_mean: Arc<CsrMatrix>,
    /// Net id per G-net column (row of `V_n` → circuit net). Ascending
    /// after a canonical build; appended columns keep arrival order.
    kept_nets: Arc<Vec<NetId>>,
    /// The covered G-cell span per G-net column (what `apply_delta` diffs
    /// against when a placement perturbation re-bins a net). Meaningful
    /// for live columns only — a tombstone's span is stale.
    spans: Arc<Vec<GcellSpan>>,
    /// Per-column tombstone flag: `true` = the net left the size filter
    /// and the column is retained empty (stable ids).
    tombstone: Arc<Vec<bool>>,
    /// Cached tombstone count (`tombstone.iter().filter(|t| **t).count()`).
    tombstones: usize,
    /// Circuit net id → column index (`NO_COLUMN` = no column), including
    /// tombstoned columns: the O(1) inverse of `kept_nets`.
    net_to_col: Arc<Vec<u32>>,
    /// Number of circuit nets without a G-net column.
    dropped_gnets: usize,
}

/// The result of a successful [`LhGraph::apply_delta`]: the patched graph
/// plus the dirty sets a feature patch needs.
#[derive(Debug)]
pub struct GraphPatch {
    /// The patched graph. Matrices untouched by the delta are shared with
    /// the source graph via `Arc` — only dirty rows were rebuilt.
    pub graph: LhGraph,
    /// Live columns whose span changed or that (re)entered the filter —
    /// moved + revived + appended, sorted ascending. Their G-net feature
    /// rows must be recomputed.
    pub dirty_cols: Vec<usize>,
    /// Columns tombstoned by this patch (sorted ascending). Their G-net
    /// feature rows must be zeroed.
    pub tombstoned_cols: Vec<usize>,
    /// Nets that left the size filter in this patch (sorted by id).
    pub crossed_out: Vec<NetId>,
    /// Nets that entered the size filter in this patch — revived or
    /// appended (sorted by id).
    pub crossed_in: Vec<NetId>,
    /// Column-space size before the patch (appends grow it).
    pub old_gnets: usize,
    /// G-cell rows whose incidence entries (and therefore net-density
    /// features) changed: the union of old and new spans of every dirty
    /// net (sorted ascending).
    pub dirty_rows: Vec<usize>,
}

impl GraphPatch {
    /// Whether this patch carried a filter crossing (tombstone, revival
    /// or append) rather than plain span moves.
    pub fn crossed_filter(&self) -> bool {
        !self.crossed_out.is_empty() || !self.crossed_in.is_empty()
    }
}

/// Why [`LhGraph::apply_delta`] could not patch in place. Enum-coded (no
/// per-delta `String` allocation) so the structural path stays cheap and
/// matchable in tests; `Display` renders the human-readable message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructuralReason {
    /// The delta would tombstone the last live column: an all-tombstone
    /// graph has nothing to forward, and a from-scratch build fails with
    /// [`LhGraphError::EmptyGraph`] identically.
    NoLiveColumns,
    /// The tombstone fraction crossed
    /// [`LhGraphConfig::max_tombstone_fraction`]: compact by rebuilding
    /// (the only event that renumbers G-net columns).
    Compaction {
        /// Tombstoned columns the compaction reclaims.
        tombstones: usize,
        /// Live columns surviving the compaction.
        live: usize,
    },
}

impl std::fmt::Display for StructuralReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StructuralReason::NoLiveColumns => {
                f.write_str("no g-net column would survive the size filter")
            }
            StructuralReason::Compaction { tombstones, live } => {
                write!(f, "compacting {tombstones} tombstoned g-net columns ({live} live)")
            }
        }
    }
}

/// The outcome of [`LhGraph::apply_delta`].
#[derive(Debug)]
pub enum DeltaOutcome {
    /// The graph was patched incrementally — including size-filter
    /// crossings, which tombstone/revive/append columns in place. The
    /// result is bitwise identical to [`LhGraph::build_with_columns`] at
    /// the new placement with the patched graph's own column layout (and
    /// to a plain [`LhGraph::build`] whenever that layout is canonical).
    Patched(GraphPatch),
    /// The delta requires a full rebuild (compaction, or no live column
    /// would remain). Carries an enum-coded reason.
    Structural(StructuralReason),
}

impl LhGraph {
    /// Builds the LH-graph for a placed circuit with the canonical column
    /// layout: one column per net passing the size filter, ascending by
    /// net id, no tombstones.
    ///
    /// # Errors
    ///
    /// Returns [`LhGraphError::EmptyGraph`] if the grid has no G-cells or
    /// no net survives the size filter while the circuit has nets.
    pub fn build(
        circuit: &Circuit,
        placement: &Placement,
        grid: &GcellGrid,
        cfg: &LhGraphConfig,
    ) -> Result<Self> {
        let n_c = grid.num_gcells();
        if n_c == 0 {
            return Err(LhGraphError::EmptyGraph("grid has no g-cells".into()));
        }
        if placement.len() < circuit.num_cells() {
            return Err(LhGraphError::DimensionMismatch(format!(
                "placement has {} positions for {} cells",
                placement.len(),
                circuit.num_cells()
            )));
        }
        let max_area = cfg.max_gnet_area(n_c);
        let mut columns = Vec::new();
        for (ni, net) in circuit.nets().iter().enumerate() {
            let bbox = placement.net_bbox(net);
            if grid.span(&bbox).is_some_and(|s| span_cells(s) <= max_area) {
                columns.push(NetId(ni as u32));
            }
        }
        if columns.is_empty() && circuit.num_nets() > 0 {
            return Err(LhGraphError::EmptyGraph(
                "size filter removed every g-net; raise max_gnet_fraction".into(),
            ));
        }
        Self::build_with_columns(circuit, placement, grid, cfg, &columns)
    }

    /// Builds the LH-graph with a **prescribed column layout**: column `j`
    /// belongs to `columns[j]`, tombstoned iff that net does not pass the
    /// size filter at `placement`. This is the from-scratch reference the
    /// incremental path is bitwise-pinned to between compactions —
    /// [`LhGraph::apply_delta`] chains are indistinguishable from
    /// `build_with_columns` at the final placement with the patched
    /// graph's own [`LhGraph::kept_nets`] (and [`LhGraph::build`] is the
    /// special case of an ascending all-live layout).
    ///
    /// # Errors
    ///
    /// Returns [`LhGraphError::EmptyGraph`] if the grid has no G-cells or
    /// every column would be tombstoned while the circuit has nets, and
    /// [`LhGraphError::DimensionMismatch`] on placement/column-list
    /// inconsistencies (duplicate or out-of-range net ids).
    pub fn build_with_columns(
        circuit: &Circuit,
        placement: &Placement,
        grid: &GcellGrid,
        cfg: &LhGraphConfig,
        columns: &[NetId],
    ) -> Result<Self> {
        let n_c = grid.num_gcells();
        if n_c == 0 {
            return Err(LhGraphError::EmptyGraph("grid has no g-cells".into()));
        }
        if placement.len() < circuit.num_cells() {
            return Err(LhGraphError::DimensionMismatch(format!(
                "placement has {} positions for {} cells",
                placement.len(),
                circuit.num_cells()
            )));
        }
        let max_area = cfg.max_gnet_area(n_c);

        let mut net_to_col = vec![NO_COLUMN; circuit.num_nets()];
        let mut spans = Vec::with_capacity(columns.len());
        let mut tombstone = vec![false; columns.len()];
        let mut triplets: Vec<(usize, usize, f32)> = Vec::new();
        let mut tombstones = 0usize;
        // a stale-span placeholder for tombstoned columns (never read)
        let dead_span: GcellSpan = (grid.coord(0), grid.coord(0));
        for (j, &net) in columns.iter().enumerate() {
            let slot = net_to_col.get_mut(net.0 as usize).ok_or_else(|| {
                LhGraphError::DimensionMismatch(format!(
                    "column {j} names net {} outside the circuit's {} nets",
                    net.0,
                    circuit.num_nets()
                ))
            })?;
            if *slot != NO_COLUMN {
                return Err(LhGraphError::DimensionMismatch(format!(
                    "net {} appears in two columns",
                    net.0
                )));
            }
            *slot = j as u32;
            let bbox = placement.net_bbox(circuit.net(net));
            match grid.span(&bbox).filter(|&s| span_cells(s) <= max_area) {
                Some((lo, hi)) => {
                    for c in grid.iter_span(lo, hi) {
                        triplets.push((grid.index(c), j, 1.0));
                    }
                    spans.push((lo, hi));
                }
                None => {
                    tombstone[j] = true;
                    tombstones += 1;
                    spans.push(dead_span);
                }
            }
        }
        let n_n = columns.len();
        if n_n == tombstones && circuit.num_nets() > 0 {
            return Err(LhGraphError::EmptyGraph(
                "size filter removed every g-net; raise max_gnet_fraction".into(),
            ));
        }
        let incidence = CsrMatrix::from_triplets(n_c, n_n.max(1), &triplets);

        // Lattice adjacency.
        let mut lat_triplets = Vec::with_capacity(4 * n_c);
        for idx in 0..n_c {
            let c = grid.coord(idx);
            for nb in grid.neighbors(c) {
                lat_triplets.push((idx, grid.index(nb), 1.0));
            }
        }
        let lattice = CsrMatrix::from_triplets(n_c, n_c, &lat_triplets);

        let gnc_sum = incidence.clone();
        let gnc_mean = incidence.row_normalized();
        // tombstoned columns have no incidence entries, so their Hᵀ rows
        // are empty and `row_normalized` leaves them masked (all-zero)
        let gcn_mean = incidence.transpose().row_normalized();
        let lattice_mean = lattice.row_normalized();

        Ok(Self {
            nx: grid.nx() as usize,
            ny: grid.ny() as usize,
            incidence: Arc::new(incidence),
            lattice: Arc::new(lattice),
            gnc_sum: Arc::new(gnc_sum),
            gnc_mean: Arc::new(gnc_mean),
            gcn_mean: Arc::new(gcn_mean),
            lattice_mean: Arc::new(lattice_mean),
            kept_nets: Arc::new(columns.to_vec()),
            spans: Arc::new(spans),
            tombstone: Arc::new(tombstone),
            tombstones,
            net_to_col: Arc::new(net_to_col),
            dropped_gnets: circuit.num_nets() - n_n,
        })
    }

    /// Patches this graph for a placement delta, given the re-binning
    /// report of [`vlsi_netlist::rebin_delta`].
    ///
    /// Only the incidence-derived rows touched by the dirty nets are
    /// rebuilt; the lattice operators and every untouched CSR row carry
    /// over (shared via `Arc`). Size-filter crossings stay on this path:
    /// a net leaving the filter tombstones its column (entries removed,
    /// mean rows masked), a net re-entering revives it, and a net that
    /// never had a column appends one. The patched graph is **bitwise
    /// identical** to [`LhGraph::build_with_columns`] at the new placement
    /// with its own column layout — the contract the incremental-pipeline
    /// proptests enforce.
    ///
    /// Returns [`DeltaOutcome::Structural`] only when the tombstone
    /// fraction crosses [`LhGraphConfig::max_tombstone_fraction`]
    /// (compaction) or no live column would remain; the caller falls back
    /// to a full rebuild.
    ///
    /// # Errors
    ///
    /// Returns [`LhGraphError::GridShape`] if `grid` is not the grid this
    /// graph was built on.
    pub fn apply_delta(
        &self,
        grid: &GcellGrid,
        cfg: &LhGraphConfig,
        report: &DirtyReport,
    ) -> Result<DeltaOutcome> {
        if self.nx != grid.nx() as usize || self.ny != grid.ny() as usize {
            return Err(LhGraphError::grid_shape(
                (self.nx, self.ny),
                (grid.nx() as usize, grid.ny() as usize),
            ));
        }
        let max_area = cfg.max_gnet_area(self.num_gcells());
        let n_n = self.kept_nets.len();

        // Classify each re-binned net against the stable column space.
        let mut moved: Vec<(usize, GcellSpan)> = Vec::new();
        let mut revived: Vec<(usize, GcellSpan)> = Vec::new();
        let mut tombstoned: Vec<usize> = Vec::new();
        let mut appended: Vec<(NetId, GcellSpan)> = Vec::new();
        for rb in &report.net_rebins {
            let slot = self.net_slot(rb.net);
            let new_span = rb.new_span.filter(|&s| span_cells(s) <= max_area);
            match (slot, new_span) {
                (Some(j), Some(ns)) if self.tombstone[j] => revived.push((j, ns)),
                (Some(j), Some(ns)) => {
                    if self.spans[j] != ns {
                        moved.push((j, ns));
                    }
                }
                (Some(j), None) => {
                    if !self.tombstone[j] {
                        tombstoned.push(j);
                    }
                }
                (None, Some(ns)) => appended.push((rb.net, ns)),
                (None, None) => {}
            }
        }
        if moved.is_empty() && revived.is_empty() && tombstoned.is_empty() && appended.is_empty() {
            return Ok(DeltaOutcome::Patched(GraphPatch {
                graph: self.clone(),
                dirty_cols: Vec::new(),
                tombstoned_cols: Vec::new(),
                crossed_out: Vec::new(),
                crossed_in: Vec::new(),
                old_gnets: n_n,
                dirty_rows: Vec::new(),
            }));
        }

        let new_total = n_n + appended.len();
        let new_tombstones = self.tombstones - revived.len() + tombstoned.len();
        let new_live = new_total - new_tombstones;
        if new_live == 0 {
            return Ok(DeltaOutcome::Structural(StructuralReason::NoLiveColumns));
        }
        if new_tombstones > 0
            && (new_tombstones as f32) > cfg.max_tombstone_fraction * (new_total as f32)
        {
            return Ok(DeltaOutcome::Structural(StructuralReason::Compaction {
                tombstones: new_tombstones,
                live: new_live,
            }));
        }

        // Live dirty columns (moved + revived + appended), ascending:
        // appended columns take indices n_n.. in rebin order.
        let mut live_dirty: Vec<(usize, GcellSpan)> =
            Vec::with_capacity(moved.len() + revived.len() + appended.len());
        live_dirty.extend(moved.iter().copied());
        live_dirty.extend(revived.iter().copied());
        live_dirty.extend(appended.iter().enumerate().map(|(i, &(_, ns))| (n_n + i, ns)));
        live_dirty.sort_unstable_by_key(|&(j, _)| j);
        tombstoned.sort_unstable();

        // Dirty G-cell rows: union of old spans (moved + tombstoned — a
        // revived column had no entries, its stale span is irrelevant)
        // and new spans (`live_dirty` = moved + revived + appended).
        let mut rows: Vec<usize> = Vec::new();
        for &j in moved.iter().map(|(j, _)| j).chain(&tombstoned) {
            let os = self.spans[j];
            rows.extend(grid.iter_span(os.0, os.1).map(|c| grid.index(c)));
        }
        for &(_, ns) in &live_dirty {
            rows.extend(grid.iter_span(ns.0, ns.1).map(|c| grid.index(c)));
        }
        rows.sort_unstable();
        rows.dedup();

        // Incidence rows: keep clean columns, drop dirty/tombstoned ones,
        // merge in the live dirty nets that now cover the row. Iterating
        // dirty nets in ascending column order fills each row's addition
        // list pre-sorted, so the rebuild is a linear merge of two
        // ascending streams — no per-row sort, same (column-sorted)
        // layout `from_triplets` produces.
        let mut dirty_col = vec![false; new_total];
        for &(j, _) in &live_dirty {
            dirty_col[j] = true;
        }
        for &j in &tombstoned {
            dirty_col[j] = true;
        }
        let mut additions: Vec<Vec<usize>> = vec![Vec::new(); rows.len()];
        for &(j, ns) in &live_dirty {
            for c in grid.iter_span(ns.0, ns.1) {
                let slot = rows.binary_search(&grid.index(c)).expect("span cell is a dirty row");
                additions[slot].push(j);
            }
        }
        let incidence_rows: Vec<(usize, Vec<(usize, f32)>)> = rows
            .iter()
            .zip(&additions)
            .map(|(&r, add)| {
                let mut entries = Vec::with_capacity(self.incidence.row_nnz(r) + add.len());
                let mut add_it = add.iter().copied().peekable();
                for (c, v) in self.incidence.row_entries(r) {
                    if dirty_col[c] {
                        continue;
                    }
                    while add_it.peek().is_some_and(|&j| j < c) {
                        entries.push((add_it.next().expect("peeked"), 1.0));
                    }
                    entries.push((c, v));
                }
                entries.extend(add_it.map(|j| (j, 1.0)));
                (r, entries)
            })
            .collect();
        let grown_h;
        let base_h = if appended.is_empty() {
            &*self.incidence
        } else {
            grown_h = self.incidence.with_cols(new_total);
            &grown_h
        };
        let incidence = Arc::new(base_h.with_rows_replaced(&incidence_rows));

        // `D⁻¹H` rows share the incidence pattern with value `1/row-degree`
        // — exactly what `row_normalized` yields on a 0/1 row (the sum of
        // `c` ones is exactly `c as f32` for any realistic degree).
        let mean_rows: Vec<(usize, Vec<(usize, f32)>)> = incidence_rows
            .iter()
            .map(|(r, es)| {
                let inv = if es.is_empty() { 0.0 } else { 1.0 / es.len() as f32 };
                (*r, es.iter().map(|&(c, _)| (c, inv)).collect())
            })
            .collect();
        let grown_m;
        let base_m = if appended.is_empty() {
            &*self.gnc_mean
        } else {
            grown_m = self.gnc_mean.with_cols(new_total);
            &grown_m
        };
        let gnc_mean = Arc::new(base_m.with_rows_replaced(&mean_rows));

        // `B⁻¹Hᵀ` rows are per-net: the new span's cells in ascending
        // index order with value `1/area` (the transpose-then-normalise
        // result of the full build), and an empty (masked) row for every
        // tombstoned column.
        let mut net_rows: Vec<(usize, Vec<(usize, f32)>)> =
            Vec::with_capacity(live_dirty.len() + tombstoned.len());
        for &j in &tombstoned {
            net_rows.push((j, Vec::new()));
        }
        for &(j, ns) in &live_dirty {
            let inv = 1.0 / span_cells(ns) as f32;
            net_rows.push((j, grid.iter_span(ns.0, ns.1).map(|c| (grid.index(c), inv)).collect()));
        }
        net_rows.sort_unstable_by_key(|&(j, _)| j);
        let grown_t;
        let base_t = if appended.is_empty() {
            &*self.gcn_mean
        } else {
            grown_t = self.gcn_mean.with_rows_appended(appended.len());
            &grown_t
        };
        let gcn_mean = Arc::new(base_t.with_rows_replaced(&net_rows));

        let mut spans = (*self.spans).clone();
        for &(j, ns) in &live_dirty {
            if j < n_n {
                spans[j] = ns;
            } else {
                spans.push(ns);
            }
        }
        let (kept_nets, net_to_col) = if appended.is_empty() {
            (Arc::clone(&self.kept_nets), Arc::clone(&self.net_to_col))
        } else {
            let mut kept = (*self.kept_nets).clone();
            let mut inv = (*self.net_to_col).clone();
            for (i, &(net, _)) in appended.iter().enumerate() {
                inv[net.0 as usize] = (n_n + i) as u32;
                kept.push(net);
            }
            (Arc::new(kept), Arc::new(inv))
        };
        let tombstone = if tombstoned.is_empty() && revived.is_empty() && appended.is_empty() {
            Arc::clone(&self.tombstone)
        } else {
            let mut flags = (*self.tombstone).clone();
            for &j in &tombstoned {
                flags[j] = true;
            }
            for &(j, _) in &revived {
                flags[j] = false;
            }
            flags.resize(new_total, false);
            Arc::new(flags)
        };

        let graph = LhGraph {
            nx: self.nx,
            ny: self.ny,
            gnc_sum: Arc::clone(&incidence),
            incidence,
            lattice: Arc::clone(&self.lattice),
            gnc_mean,
            gcn_mean,
            lattice_mean: Arc::clone(&self.lattice_mean),
            kept_nets,
            spans: Arc::new(spans),
            tombstone,
            tombstones: new_tombstones,
            net_to_col,
            dropped_gnets: self.dropped_gnets - appended.len(),
        };
        let mut crossed_out: Vec<NetId> = tombstoned.iter().map(|&j| self.kept_nets[j]).collect();
        crossed_out.sort_unstable();
        let mut crossed_in: Vec<NetId> = revived
            .iter()
            .map(|&(j, _)| self.kept_nets[j])
            .chain(appended.iter().map(|&(net, _)| net))
            .collect();
        crossed_in.sort_unstable();
        Ok(DeltaOutcome::Patched(GraphPatch {
            graph,
            dirty_cols: live_dirty.iter().map(|&(j, _)| j).collect(),
            tombstoned_cols: tombstoned,
            crossed_out,
            crossed_in,
            old_gnets: n_n,
            dirty_rows: rows,
        }))
    }

    /// Number of G-cell nodes (`N_c`).
    pub fn num_gcells(&self) -> usize {
        self.nx * self.ny
    }

    /// Number of G-net nodes (`N_n`) — the full column space, tombstones
    /// included (the matrix dimension).
    pub fn num_gnets(&self) -> usize {
        self.kept_nets.len()
    }

    /// Number of live (non-tombstoned) G-net columns.
    pub fn live_gnets(&self) -> usize {
        self.kept_nets.len() - self.tombstones
    }

    /// Number of tombstoned G-net columns.
    pub fn tombstoned_gnets(&self) -> usize {
        self.tombstones
    }

    /// Whether column `col` is a tombstone (net left the size filter; the
    /// column is retained empty for id stability).
    ///
    /// # Panics
    ///
    /// Panics if `col >= num_gnets()`.
    pub fn is_tombstone(&self, col: usize) -> bool {
        self.tombstone[col]
    }

    /// Grid columns.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid rows.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// The incidence matrix `H` (`N_c × N_n`).
    pub fn incidence(&self) -> &Arc<CsrMatrix> {
        &self.incidence
    }

    /// The lattice adjacency `A` (`N_c × N_c`).
    pub fn lattice(&self) -> &Arc<CsrMatrix> {
        &self.lattice
    }

    /// Sum aggregation G-net → G-cell (`G_nc = H`, Eq. 1).
    pub fn gnc_sum(&self) -> &Arc<CsrMatrix> {
        &self.gnc_sum
    }

    /// Mean aggregation G-net → G-cell (`D⁻¹H`).
    pub fn gnc_mean(&self) -> &Arc<CsrMatrix> {
        &self.gnc_mean
    }

    /// Mean aggregation G-cell → G-net (`B⁻¹Hᵀ`).
    pub fn gcn_mean(&self) -> &Arc<CsrMatrix> {
        &self.gcn_mean
    }

    /// Mean aggregation over lattice neighbours (`P⁻¹A`).
    pub fn lattice_mean(&self) -> &Arc<CsrMatrix> {
        &self.lattice_mean
    }

    /// The circuit net behind each G-net column (tombstones included).
    pub fn kept_nets(&self) -> &[NetId] {
        &self.kept_nets
    }

    /// The G-net column of a circuit net, or `None` if the net has no
    /// **live** column (never kept, or currently tombstoned). O(1).
    pub fn net_column(&self, net: NetId) -> Option<usize> {
        self.net_slot(net).filter(|&j| !self.tombstone[j])
    }

    /// The column slot of a net, live or tombstoned.
    fn net_slot(&self, net: NetId) -> Option<usize> {
        match self.net_to_col.get(net.0 as usize) {
            Some(&c) if c != NO_COLUMN => Some(c as usize),
            _ => None,
        }
    }

    /// The covered G-cell span of a G-net column. Meaningful for live
    /// columns only — a tombstone's span is stale.
    ///
    /// # Panics
    ///
    /// Panics if `col >= num_gnets()`.
    pub fn span_of(&self, col: usize) -> GcellSpan {
        self.spans[col]
    }

    /// The covered span per G-net column (stale for tombstones).
    pub fn spans(&self) -> &[GcellSpan] {
        &self.spans
    }

    /// Number of circuit nets without a G-net column.
    pub fn dropped_gnets(&self) -> usize {
        self.dropped_gnets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_netlist::{rebin_delta, Cell, CellId, Circuit, Net, Pin, PlacementDelta, Point, Rect};

    /// 4×4 grid, 2 nets: one small (2×1 g-cells), one large (3×3).
    fn sample() -> (Circuit, Placement, GcellGrid) {
        let die = Rect::new(0.0, 0.0, 8.0, 8.0);
        let grid = GcellGrid::new(die, 4, 4);
        let mut c = Circuit::new("s", die);
        let a = c.add_cell(Cell::movable("a", 0.2, 0.2));
        let b = c.add_cell(Cell::movable("b", 0.2, 0.2));
        let d = c.add_cell(Cell::movable("d", 0.2, 0.2));
        let e = c.add_cell(Cell::movable("e", 0.2, 0.2));
        c.add_net(Net::new("small", vec![Pin::at_center(a), Pin::at_center(b)]));
        c.add_net(Net::new("large", vec![Pin::at_center(d), Pin::at_center(e)]));
        let mut p = Placement::zeroed(4);
        p.set_position(a, Point::new(1.0, 1.0)); // (0,0)
        p.set_position(b, Point::new(3.0, 1.0)); // (1,0)
        p.set_position(d, Point::new(1.0, 3.0)); // (0,1)
        p.set_position(e, Point::new(5.0, 7.0)); // (2,3)
        (c, p, grid)
    }

    fn frac(max_gnet_fraction: f32) -> LhGraphConfig {
        LhGraphConfig { max_gnet_fraction, ..LhGraphConfig::default() }
    }

    /// Routes one delta through `rebin_delta` + `apply_delta`.
    fn step(
        g: &LhGraph,
        c: &Circuit,
        p: &mut Placement,
        grid: &GcellGrid,
        cfg: &LhGraphConfig,
        delta: &PlacementDelta,
    ) -> DeltaOutcome {
        let before = p.clone();
        let mut after = before.clone();
        delta.apply(&mut after);
        let report = rebin_delta(c, grid, &before, &after, delta, &c.cell_to_nets());
        *p = after;
        g.apply_delta(grid, cfg, &report).expect("same grid")
    }

    #[test]
    fn incidence_matches_bounding_boxes() {
        let (c, p, grid) = sample();
        let g = LhGraph::build(&c, &p, &grid, &frac(1.0)).unwrap();
        assert_eq!(g.num_gcells(), 16);
        assert_eq!(g.num_gnets(), 2);
        let h = g.incidence().to_dense();
        // small net: cells (0,0) and (1,0) = indices 0, 1
        assert_eq!(h[(0, 0)], 1.0);
        assert_eq!(h[(1, 0)], 1.0);
        assert_eq!(h[(2, 0)], 0.0);
        // large net: 3 cols x 3 rows from (0,1) to (2,3) = 9 cells
        let col1: f32 = (0..16).map(|i| h[(i, 1)]).sum();
        assert_eq!(col1, 9.0);
    }

    #[test]
    fn size_filter_drops_large_gnets() {
        let (c, p, grid) = sample();
        // max area = 16 * 0.2 = 3.2 -> 3 cells; the 9-cell net is dropped
        let g = LhGraph::build(&c, &p, &grid, &frac(0.2)).unwrap();
        assert_eq!(g.num_gnets(), 1);
        assert_eq!(g.dropped_gnets(), 1);
        assert_eq!(g.kept_nets()[0], NetId(0));
    }

    #[test]
    fn lattice_degrees_are_2_3_4() {
        let (c, p, grid) = sample();
        let g = LhGraph::build(&c, &p, &grid, &frac(1.0)).unwrap();
        let degrees = g.lattice().row_sums();
        // corners have 2 neighbours, edges 3, interior 4
        assert_eq!(degrees[0], 2.0); // (0,0)
        assert_eq!(degrees[1], 3.0); // (1,0)
        assert_eq!(degrees[5], 4.0); // (1,1)
        let total: f32 = degrees.iter().sum();
        assert_eq!(total, 2.0 * 24.0); // 24 undirected edges in a 4x4 lattice
    }

    #[test]
    fn lattice_is_symmetric() {
        let (c, p, grid) = sample();
        let g = LhGraph::build(&c, &p, &grid, &frac(1.0)).unwrap();
        let a = g.lattice().to_dense();
        for i in 0..16 {
            for j in 0..16 {
                assert_eq!(a[(i, j)], a[(j, i)]);
            }
        }
    }

    #[test]
    fn operators_are_row_stochastic() {
        let (c, p, grid) = sample();
        let g = LhGraph::build(&c, &p, &grid, &frac(1.0)).unwrap();
        for sums in [g.gcn_mean().row_sums(), g.lattice_mean().row_sums()] {
            for s in sums {
                assert!((s - 1.0).abs() < 1e-5, "row sum {s}");
            }
        }
        // gnc_mean rows are 1 for covered g-cells, 0 for uncovered
        for s in g.gnc_mean().row_sums() {
            assert!(s.abs() < 1e-5 || (s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn gcn_mean_shape_is_transposed() {
        let (c, p, grid) = sample();
        let g = LhGraph::build(&c, &p, &grid, &frac(1.0)).unwrap();
        assert_eq!(g.gcn_mean().shape(), (2, 16));
        assert_eq!(g.gnc_mean().shape(), (16, 2));
        assert_eq!(g.gnc_sum().shape(), (16, 2));
    }

    #[test]
    fn empty_filter_result_is_an_error() {
        let (c, p, grid) = sample();
        // fraction so small that max_area = 1 g-cell; both nets span > 1
        let err = LhGraph::build(&c, &p, &grid, &frac(1e-9));
        assert!(err.is_err());
    }

    #[test]
    fn circuit_without_nets_builds_empty_hypergraph() {
        let die = Rect::new(0.0, 0.0, 4.0, 4.0);
        let grid = GcellGrid::new(die, 2, 2);
        let c = Circuit::new("none", die);
        let p = Placement::zeroed(0);
        let g = LhGraph::build(&c, &p, &grid, &LhGraphConfig::default()).unwrap();
        assert_eq!(g.num_gnets(), 0);
        assert_eq!(g.num_gcells(), 4);
    }

    #[test]
    fn crossing_out_tombstones_the_column_in_place() {
        let (c, mut p, grid) = sample();
        // max area = 16 * 0.6 = 9 cells: both nets live (2 and 9 cells);
        // never compact so the crossing stays on the patched path
        let cfg = LhGraphConfig { max_gnet_fraction: 0.6, max_tombstone_fraction: 1.0 };
        let g = LhGraph::build(&c, &p, &grid, &cfg).unwrap();
        assert_eq!((g.num_gnets(), g.live_gnets()), (2, 2));
        // stretch net 1 to 12 cells: it leaves the filter
        let delta = PlacementDelta::single(CellId(3), Point::new(7.0, 7.0));
        let DeltaOutcome::Patched(patch) = step(&g, &c, &mut p, &grid, &cfg, &delta) else {
            panic!("crossing must patch, not rebuild");
        };
        let pg = &patch.graph;
        assert_eq!(pg.num_gnets(), 2, "column space must not shrink");
        assert_eq!(pg.live_gnets(), 1);
        assert!(pg.is_tombstone(1));
        assert_eq!(pg.tombstoned_gnets(), 1);
        assert_eq!(patch.crossed_out, vec![NetId(1)]);
        assert_eq!(patch.tombstoned_cols, vec![1]);
        assert!(patch.crossed_filter());
        assert_eq!(pg.net_column(NetId(1)), None, "tombstoned column is not live");
        assert_eq!(pg.net_column(NetId(0)), Some(0));
        assert_eq!(pg.incidence().nnz(), 2, "tombstoned incidence entries are gone");
        assert_eq!(pg.gcn_mean().row_nnz(1), 0, "mean-normalisation is masked");
        // bitwise parity with the prescribed-layout reference build
        let reference = LhGraph::build_with_columns(&c, &p, &grid, &cfg, pg.kept_nets()).unwrap();
        assert_eq!(pg.incidence().as_ref(), reference.incidence().as_ref());
        assert_eq!(pg.gnc_mean().as_ref(), reference.gnc_mean().as_ref());
        assert_eq!(pg.gcn_mean().as_ref(), reference.gcn_mean().as_ref());
        assert_eq!(reference.tombstoned_gnets(), 1, "liveness is placement-derived");
    }

    #[test]
    fn out_and_back_crossing_revives_the_same_column_bitwise() {
        let (c, mut p, grid) = sample();
        let cfg = LhGraphConfig { max_gnet_fraction: 0.6, max_tombstone_fraction: 1.0 };
        let g = LhGraph::build(&c, &p, &grid, &cfg).unwrap();
        let home = p.position(CellId(3));
        let fp0 = g.incidence().content_fingerprint();
        let out = PlacementDelta::single(CellId(3), Point::new(7.0, 7.0));
        let DeltaOutcome::Patched(patch) = step(&g, &c, &mut p, &grid, &cfg, &out) else {
            panic!("crossing out must patch");
        };
        let back = PlacementDelta::single(CellId(3), home);
        let DeltaOutcome::Patched(patch2) = step(&patch.graph, &c, &mut p, &grid, &cfg, &back)
        else {
            panic!("crossing back must patch");
        };
        let pg = &patch2.graph;
        assert_eq!(patch2.crossed_in, vec![NetId(1)]);
        assert_eq!(pg.net_column(NetId(1)), Some(1), "revival reuses the old column");
        assert_eq!(pg.tombstoned_gnets(), 0);
        // out-and-back lands bitwise on the original state
        assert_eq!(pg.incidence().as_ref(), g.incidence().as_ref());
        assert_eq!(pg.incidence().content_fingerprint(), fp0);
        assert_eq!(pg.gcn_mean().as_ref(), g.gcn_mean().as_ref());
        assert_eq!(pg.gnc_mean().as_ref(), g.gnc_mean().as_ref());
    }

    #[test]
    fn entering_net_appends_a_column_and_matches_prescribed_build() {
        let (c, mut p, grid) = sample();
        let cfg = frac(0.2);
        let g = LhGraph::build(&c, &p, &grid, &cfg).unwrap();
        assert_eq!(g.num_gnets(), 1, "net 1 dropped at build");
        // shrink net 1 (cells d,e) into one g-cell: it enters the filter
        let mut delta = PlacementDelta::new();
        delta.push(CellId(2), Point::new(1.0, 5.0));
        delta.push(CellId(3), Point::new(1.2, 5.2));
        let DeltaOutcome::Patched(patch) = step(&g, &c, &mut p, &grid, &cfg, &delta) else {
            panic!("entering net must append, not rebuild");
        };
        let pg = &patch.graph;
        assert_eq!(pg.num_gnets(), 2);
        assert_eq!(pg.net_column(NetId(1)), Some(1), "appended at the end");
        assert_eq!(patch.crossed_in, vec![NetId(1)]);
        assert_eq!(patch.old_gnets, 1);
        assert_eq!(pg.dropped_gnets(), 0);
        // bitwise parity with the prescribed-layout reference build
        let reference = LhGraph::build_with_columns(&c, &p, &grid, &cfg, pg.kept_nets()).unwrap();
        assert_eq!(pg.incidence().as_ref(), reference.incidence().as_ref());
        assert_eq!(pg.gnc_mean().as_ref(), reference.gnc_mean().as_ref());
        assert_eq!(pg.gcn_mean().as_ref(), reference.gcn_mean().as_ref());
        assert_eq!(
            pg.incidence().content_fingerprint(),
            reference.incidence().content_fingerprint()
        );
    }

    #[test]
    fn tombstone_threshold_reports_compaction() {
        let (c, mut p, grid) = sample();
        // threshold 0: the very first tombstone triggers compaction
        let cfg = LhGraphConfig { max_gnet_fraction: 0.2, max_tombstone_fraction: 0.0 };
        let g = LhGraph::build(&c, &p, &grid, &cfg).unwrap();
        // need a second live column so NoLiveColumns doesn't mask the
        // compaction: shrink net 1 into the filter first
        let mut shrink = PlacementDelta::new();
        shrink.push(CellId(2), Point::new(1.0, 5.0));
        shrink.push(CellId(3), Point::new(1.2, 5.2));
        let DeltaOutcome::Patched(patch) = step(&g, &c, &mut p, &grid, &cfg, &shrink) else {
            panic!("append without tombstones stays patched at threshold 0");
        };
        let stretch = PlacementDelta::single(CellId(1), Point::new(7.0, 7.0));
        match step(&patch.graph, &c, &mut p, &grid, &cfg, &stretch) {
            DeltaOutcome::Structural(StructuralReason::Compaction { tombstones, live }) => {
                assert_eq!((tombstones, live), (1, 1));
            }
            other => panic!("expected compaction, got {other:?}"),
        }
    }

    #[test]
    fn losing_the_last_live_column_is_structural() {
        let (c, mut p, grid) = sample();
        let cfg = frac(0.2);
        let g = LhGraph::build(&c, &p, &grid, &cfg).unwrap();
        assert_eq!(g.live_gnets(), 1);
        let stretch = PlacementDelta::single(CellId(1), Point::new(7.0, 7.0));
        match step(&g, &c, &mut p, &grid, &cfg, &stretch) {
            DeltaOutcome::Structural(StructuralReason::NoLiveColumns) => {}
            other => panic!("expected NoLiveColumns, got {other:?}"),
        }
        // and the rebuild the caller falls back to fails like EmptyGraph
        assert!(LhGraph::build(&c, &p, &grid, &cfg).is_err());
    }

    #[test]
    fn structural_reasons_render_stably() {
        // benches/tests grep these strings; keep them fixed
        assert_eq!(
            StructuralReason::NoLiveColumns.to_string(),
            "no g-net column would survive the size filter"
        );
        assert_eq!(
            StructuralReason::Compaction { tombstones: 3, live: 9 }.to_string(),
            "compacting 3 tombstoned g-net columns (9 live)"
        );
    }

    #[test]
    fn build_with_columns_rejects_bad_layouts() {
        let (c, p, grid) = sample();
        let cfg = frac(1.0);
        let dup = LhGraph::build_with_columns(&c, &p, &grid, &cfg, &[NetId(0), NetId(0)]);
        assert!(dup.is_err());
        let oob = LhGraph::build_with_columns(&c, &p, &grid, &cfg, &[NetId(7)]);
        assert!(oob.is_err());
    }
}
