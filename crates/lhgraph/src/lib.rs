//! `lh-graph` — the lattice hypergraph formulation of VLSI circuits
//! (section 3 of the LHNN paper).
//!
//! * [`LhGraph`] — the heterogeneous graph `G = (V_c, V_n, A, H)` with its
//!   pre-built aggregation operators (`H`, `D⁻¹H`, `B⁻¹Hᵀ`, `P⁻¹A`),
//! * [`FeatureSet`] — the 4-channel G-net and G-cell features of §3.1,
//! * [`features`] — the crafted-feature recovery of §3.2 (net density is
//!   recovered *exactly* by one-step message passing; pin density and RUDY
//!   in expectation),
//! * [`Targets`] — demand/congestion supervision extracted from router
//!   labels, with the paper's uni-/duo-channel selection.
//!
//! # Example
//!
//! ```
//! use vlsi_netlist::synth::{generate, SynthConfig};
//! use vlsi_place::GlobalPlacer;
//! use lh_graph::{FeatureSet, LhGraph, LhGraphConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = SynthConfig { n_cells: 120, grid_nx: 8, grid_ny: 8, ..SynthConfig::default() };
//! let synth = generate(&cfg)?;
//! let grid = cfg.grid();
//! let placed = GlobalPlacer::default().place_synth(&synth, &grid)?;
//! let graph = LhGraph::build(&synth.circuit, &placed.placement, &grid,
//!                            &LhGraphConfig::default())?;
//! let feats = FeatureSet::build(&graph, &synth.circuit, &placed.placement, &grid)?;
//! assert_eq!(feats.gcell.rows(), graph.num_gcells());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod error;
pub mod features;
pub mod graph;
pub mod halo;
pub mod targets;

pub use error::{LhGraphError, Result};
pub use features::{
    gcell_channel, gnet_channel, recover_net_density, recover_pin_density, recover_rudy, FeatureSet,
};
pub use graph::{DeltaOutcome, GraphPatch, LhGraph, LhGraphConfig, StructuralReason};
pub use targets::{ChannelMode, Targets};
