//! Node features of the LH-graph and the crafted-feature recovery of §3.2.
//!
//! G-net features (`V_n`, 4 channels): `spanV`, `spanH`, `npin`, `area`.
//! G-cell features (`V_c`, 4 channels): horizontal net density, vertical
//! net density, pin density, terminal mask — exactly the channels the
//! paper assigns in §3.1.
//!
//! §3.2 shows that the CNN-style crafted maps are recoverable by one-step
//! G-net → G-cell message passing: [`recover_net_density`] reproduces the
//! density maps *exactly*, and pin density / RUDY are recovered in
//! expectation. These functions are unit-tested against the direct
//! computations below.

use neurograd::Matrix;
use vlsi_netlist::{CellKind, Circuit, DirtyReport, GcellGrid, Placement, Rect};

use crate::error::{LhGraphError, Result};
use crate::graph::{GraphPatch, LhGraph};

/// Column layout of the G-net feature matrix.
pub mod gnet_channel {
    /// Vertical span in G-cells.
    pub const SPAN_V: usize = 0;
    /// Horizontal span in G-cells.
    pub const SPAN_H: usize = 1;
    /// Number of pins of the underlying net.
    pub const NPIN: usize = 2;
    /// Number of G-cells covered (`spanH · spanV`).
    pub const AREA: usize = 3;
    /// Total number of G-net channels.
    pub const COUNT: usize = 4;
}

/// Column layout of the G-cell feature matrix.
pub mod gcell_channel {
    /// Horizontal net density.
    pub const NET_DENSITY_H: usize = 0;
    /// Vertical net density.
    pub const NET_DENSITY_V: usize = 1;
    /// Pin density (pins per G-cell).
    pub const PIN_DENSITY: usize = 2;
    /// Terminal coverage mask (1 if any terminal overlaps the G-cell).
    pub const TERMINAL_MASK: usize = 3;
    /// Total number of G-cell channels.
    pub const COUNT: usize = 4;
}

/// The input features of one LH-graph.
#[derive(Debug, Clone)]
pub struct FeatureSet {
    /// `V_n⁰`: `N_n × 4` G-net features.
    pub gnet: Matrix,
    /// `V_c⁰`: `N_c × 4` G-cell features.
    pub gcell: Matrix,
}

impl FeatureSet {
    /// Computes the features for a graph built from the same
    /// `(circuit, placement, grid)` triple.
    ///
    /// # Errors
    ///
    /// Returns [`LhGraphError::GridShape`] if `graph` was built on a
    /// different grid.
    pub fn build(
        graph: &LhGraph,
        circuit: &Circuit,
        placement: &Placement,
        grid: &GcellGrid,
    ) -> Result<Self> {
        if graph.nx() != grid.nx() as usize || graph.ny() != grid.ny() as usize {
            return Err(LhGraphError::grid_shape(
                (graph.nx(), graph.ny()),
                (grid.nx() as usize, grid.ny() as usize),
            ));
        }
        let n_n = graph.num_gnets();
        let n_c = graph.num_gcells();

        // --- G-net features (tombstoned columns keep all-zero rows) ---
        let mut gnet = Matrix::zeros(n_n.max(1), gnet_channel::COUNT);
        for (j, net_id) in graph.kept_nets().iter().enumerate() {
            if graph.is_tombstone(j) {
                continue;
            }
            let net = circuit.net(*net_id);
            let bbox = placement.net_bbox(net);
            let (lo, hi) = grid.span(&bbox).expect("live g-net has a span");
            let span_h = (hi.gx - lo.gx + 1) as f32;
            let span_v = (hi.gy - lo.gy + 1) as f32;
            gnet[(j, gnet_channel::SPAN_V)] = span_v;
            gnet[(j, gnet_channel::SPAN_H)] = span_h;
            gnet[(j, gnet_channel::NPIN)] = net.degree() as f32;
            gnet[(j, gnet_channel::AREA)] = span_h * span_v;
        }

        // --- G-cell features ---
        let mut gcell = Matrix::zeros(n_c, gcell_channel::COUNT);
        // net density: iterate live g-nets, add 1/span to covered cells
        for (j, net_id) in graph.kept_nets().iter().enumerate() {
            if graph.is_tombstone(j) {
                continue;
            }
            let net = circuit.net(*net_id);
            let bbox = placement.net_bbox(net);
            let (lo, hi) = grid.span(&bbox).expect("live g-net has a span");
            let span_v = gnet[(j, gnet_channel::SPAN_V)];
            let span_h = gnet[(j, gnet_channel::SPAN_H)];
            for c in grid.iter_span(lo, hi) {
                let idx = grid.index(c);
                gcell[(idx, gcell_channel::NET_DENSITY_H)] += 1.0 / span_v;
                gcell[(idx, gcell_channel::NET_DENSITY_V)] += 1.0 / span_h;
            }
        }
        // pin density: actual pin positions (over live kept nets, so that
        // the one-step recovery statement of §3.2 holds exactly in total
        // mass)
        for (j, net_id) in graph.kept_nets().iter().enumerate() {
            if graph.is_tombstone(j) {
                continue;
            }
            for pin in &circuit.net(*net_id).pins {
                let idx = grid.index(grid.locate(placement.pin_position(pin)));
                gcell[(idx, gcell_channel::PIN_DENSITY)] += 1.0;
            }
        }
        // terminal mask
        paint_terminal_mask(&mut gcell, circuit, placement, grid);

        Ok(Self { gnet, gcell })
    }

    /// Patches this feature set for a placement delta, given the graph
    /// patch from [`LhGraph::apply_delta`] and the re-binning report the
    /// patch was computed from.
    ///
    /// Only dirty G-net rows and dirty G-cell rows are recomputed; pin
    /// density is adjusted by exact ±1 counts per crossed G-cell boundary,
    /// with nets crossing the size filter bulk-removed/added at their
    /// pins' positions; tombstoned G-net rows are zeroed and appended
    /// columns grow the G-net block. The terminal mask is repainted only
    /// when a terminal moved. The result is **bitwise identical** to
    /// `FeatureSet::build` on the patched graph at the new placement.
    ///
    /// # Errors
    ///
    /// Returns [`LhGraphError::GridShape`] /
    /// [`LhGraphError::DimensionMismatch`] if the patch does not belong to
    /// this feature set's graph and grid.
    pub fn apply_delta(
        &self,
        patch: &GraphPatch,
        report: &DirtyReport,
        circuit: &Circuit,
        placement: &Placement,
        grid: &GcellGrid,
    ) -> Result<FeatureSet> {
        let graph = &patch.graph;
        if graph.nx() != grid.nx() as usize || graph.ny() != grid.ny() as usize {
            return Err(LhGraphError::grid_shape(
                (graph.nx(), graph.ny()),
                (grid.nx() as usize, grid.ny() as usize),
            ));
        }
        if self.gcell.rows() != graph.num_gcells() || self.gnet.rows() != patch.old_gnets.max(1) {
            return Err(LhGraphError::DimensionMismatch(format!(
                "feature set describes {} g-cells / {} g-nets, patch {} / {}",
                self.gcell.rows(),
                self.gnet.rows(),
                graph.num_gcells(),
                patch.old_gnets
            )));
        }
        // Appended columns grow the G-net block (new rows start zeroed,
        // exactly like the full build before its per-column fill).
        let mut gnet = if graph.num_gnets() > patch.old_gnets {
            let mut grown = Matrix::zeros(graph.num_gnets(), gnet_channel::COUNT);
            let old = self.gnet.as_slice();
            grown.as_mut_slice()[..old.len()].copy_from_slice(old);
            grown
        } else {
            self.gnet.clone()
        };
        let mut gcell = self.gcell.clone();

        // Tombstoned G-net rows zero out (the full build skips them).
        for &j in &patch.tombstoned_cols {
            gnet.row_mut(j).fill(0.0);
        }

        // Dirty G-net rows: span features from the patched spans.
        for &j in &patch.dirty_cols {
            let net = circuit.net(graph.kept_nets()[j]);
            let (lo, hi) = graph.span_of(j);
            let span_h = (hi.gx - lo.gx + 1) as f32;
            let span_v = (hi.gy - lo.gy + 1) as f32;
            gnet[(j, gnet_channel::SPAN_V)] = span_v;
            gnet[(j, gnet_channel::SPAN_H)] = span_h;
            gnet[(j, gnet_channel::NPIN)] = net.degree() as f32;
            gnet[(j, gnet_channel::AREA)] = span_h * span_v;
        }

        // Dirty G-cell rows: re-accumulate net density from the patched
        // incidence row. Entries are in ascending column order — the same
        // accumulation order as the full build's outer loop over kept
        // nets, so the float sums are bitwise identical. (Tombstoned
        // columns have no incidence entries, so their zeroed feature rows
        // are never read here.)
        for &r in &patch.dirty_rows {
            let mut h = 0.0f32;
            let mut v = 0.0f32;
            for (j, _) in graph.incidence().row_entries(r) {
                h += 1.0 / gnet[(j, gnet_channel::SPAN_V)];
                v += 1.0 / gnet[(j, gnet_channel::SPAN_H)];
            }
            gcell[(r, gcell_channel::NET_DENSITY_H)] = h;
            gcell[(r, gcell_channel::NET_DENSITY_V)] = v;
        }

        // Pin density holds exact integer counts, so ±1 adjustments are
        // exact and order-independent. Nets crossing the size filter are
        // bulk-adjusted at their pins' *new* positions: a crossed-out
        // net's pins all leave the count, a crossed-in net's pins all
        // enter it.
        for &net_id in &patch.crossed_out {
            for pin in &circuit.net(net_id).pins {
                let idx = grid.index(grid.locate(placement.pin_position(pin)));
                gcell[(idx, gcell_channel::PIN_DENSITY)] -= 1.0;
            }
        }
        for &net_id in &patch.crossed_in {
            for pin in &circuit.net(net_id).pins {
                let idx = grid.index(grid.locate(placement.pin_position(pin)));
                gcell[(idx, gcell_channel::PIN_DENSITY)] += 1.0;
            }
        }
        for pm in &report.pin_moves {
            if patch.crossed_in.binary_search(&pm.net).is_ok() {
                // already counted in full at the new position above
                continue;
            }
            if patch.crossed_out.binary_search(&pm.net).is_ok() {
                // the bulk -1 hit the pin's new g-cell; it belonged at the
                // old one
                gcell[(pm.to, gcell_channel::PIN_DENSITY)] += 1.0;
                gcell[(pm.from, gcell_channel::PIN_DENSITY)] -= 1.0;
                continue;
            }
            if graph.net_column(pm.net).is_none() {
                continue;
            }
            gcell[(pm.from, gcell_channel::PIN_DENSITY)] -= 1.0;
            gcell[(pm.to, gcell_channel::PIN_DENSITY)] += 1.0;
        }

        if report.moved_terminal {
            for r in 0..gcell.rows() {
                gcell[(r, gcell_channel::TERMINAL_MASK)] = 0.0;
            }
            paint_terminal_mask(&mut gcell, circuit, placement, grid);
        }

        Ok(FeatureSet { gnet, gcell })
    }

    /// A content fingerprint over both feature blocks.
    ///
    /// Two feature sets fingerprint equal iff their matrices are bitwise
    /// equal, so an unchanged placement always maps to the same serving
    /// cache key while any feature perturbation (normalisation choice,
    /// moved cell) produces a different one.
    pub fn fingerprint(&self) -> u64 {
        let mut h = neurograd::Fnv64::new();
        self.gnet.hash_into(&mut h);
        self.gcell.hash_into(&mut h);
        h.finish()
    }

    /// Returns a copy with every G-cell channel except the terminal mask
    /// zeroed — the "no G-cell feature" ablation of Table 3.
    pub fn without_gcell_features(&self) -> FeatureSet {
        let mut gcell = self.gcell.clone();
        for r in 0..gcell.rows() {
            let row = gcell.row_mut(r);
            row[gcell_channel::NET_DENSITY_H] = 0.0;
            row[gcell_channel::NET_DENSITY_V] = 0.0;
            row[gcell_channel::PIN_DENSITY] = 0.0;
        }
        FeatureSet { gnet: self.gnet.clone(), gcell }
    }

    /// Per-channel min-max normalisation of both feature blocks into
    /// `[0, 1]` (constant channels map to 0). Returns a new set.
    ///
    /// Note: min-max scaling is *per design*, which erases the absolute
    /// demand level that distinguishes congested from uncongested designs.
    /// Cross-design experiments should prefer [`FeatureSet::scaled_fixed`].
    pub fn normalized(&self) -> FeatureSet {
        FeatureSet { gnet: minmax(&self.gnet), gcell: minmax(&self.gcell) }
    }

    /// Scales each channel by a fixed dataset-wide divisor, preserving
    /// absolute magnitudes across designs (so a globally dense design
    /// *looks* denser than a sparse one — the signal models need for the
    /// per-design congestion-level calibration shown in Figure 4 of the
    /// paper).
    ///
    /// # Panics
    ///
    /// Panics if divisor counts don't match the channel counts or any
    /// divisor is non-positive.
    pub fn scaled_fixed(&self, gcell_divisors: &[f32], gnet_divisors: &[f32]) -> FeatureSet {
        assert_eq!(gcell_divisors.len(), self.gcell.cols(), "gcell divisor count");
        assert_eq!(gnet_divisors.len(), self.gnet.cols(), "gnet divisor count");
        assert!(
            gcell_divisors.iter().chain(gnet_divisors).all(|&d| d > 0.0),
            "divisors must be positive"
        );
        let scale = |m: &Matrix, divs: &[f32]| {
            let mut out = m.clone();
            for r in 0..out.rows() {
                for (v, &d) in out.row_mut(r).iter_mut().zip(divs) {
                    *v /= d;
                }
            }
            out
        };
        FeatureSet {
            gnet: scale(&self.gnet, gnet_divisors),
            gcell: scale(&self.gcell, gcell_divisors),
        }
    }

    /// The default fixed divisors used by the reproduction's experiments:
    /// net-density and pin-density channels are divided by 8 (typical
    /// magnitudes at the suite's grid sizes), the terminal mask kept
    /// binary; G-net spans by 8, pin count by 8, area by 64.
    pub fn default_divisors() -> (Vec<f32>, Vec<f32>) {
        (vec![8.0, 8.0, 8.0, 1.0], vec![8.0, 8.0, 8.0, 64.0])
    }
}

/// Sets the terminal-coverage channel: 1 for every G-cell a terminal's
/// rectangle overlaps with positive area. Shared by the full build and the
/// incremental repaint (assignment of a constant is order-independent, so
/// both paths agree bitwise).
fn paint_terminal_mask(
    gcell: &mut Matrix,
    circuit: &Circuit,
    placement: &Placement,
    grid: &GcellGrid,
) {
    for (i, cell) in circuit.cells().iter().enumerate() {
        if cell.kind != CellKind::Terminal {
            continue;
        }
        let p = placement.position(vlsi_netlist::CellId(i as u32));
        let rect = Rect::new(
            p.x - cell.width * 0.5,
            p.y - cell.height * 0.5,
            p.x + cell.width * 0.5,
            p.y + cell.height * 0.5,
        );
        let Some((lo, hi)) = grid.span(&rect) else { continue };
        for c in grid.iter_span(lo, hi) {
            if grid.gcell_rect(c).intersection(&rect).is_some_and(|r| r.area() > 0.0) {
                gcell[(grid.index(c), gcell_channel::TERMINAL_MASK)] = 1.0;
            }
        }
    }
}

fn minmax(m: &Matrix) -> Matrix {
    let (rows, cols) = m.shape();
    let mut out = m.clone();
    for c in 0..cols {
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for r in 0..rows {
            lo = lo.min(m[(r, c)]);
            hi = hi.max(m[(r, c)]);
        }
        let range = hi - lo;
        for r in 0..rows {
            out[(r, c)] = if range > 0.0 { (m[(r, c)] - lo) / range } else { 0.0 };
        }
    }
    out
}

/// The shared §3.2 recovery recipe: one-step sum message passing
/// `H · f(V_n)` where column `k` of the G-net message is `channels[k]`
/// applied to that G-net's feature row. Every crafted-map recovery below
/// is an instance of this gather with a different per-net function.
fn recover_by_gather(
    graph: &LhGraph,
    gnet_features: &Matrix,
    channels: &[&dyn Fn(&[f32]) -> f32],
) -> Matrix {
    let n_n = graph.num_gnets();
    let mut msg = Matrix::zeros(n_n.max(1), channels.len());
    for j in 0..n_n {
        let row = gnet_features.row(j);
        for (k, f) in channels.iter().enumerate() {
            msg[(j, k)] = f(row);
        }
    }
    graph.gnc_sum().spmm(&msg)
}

/// §3.2: recovers the horizontal/vertical net-density maps by one-step
/// sum message passing `H · f(V_n)` with `f = [1/spanV, 1/spanH]`.
///
/// Returns an `N_c × 2` matrix whose columns equal the direct density
/// computation exactly.
pub fn recover_net_density(graph: &LhGraph, gnet_features: &Matrix) -> Matrix {
    recover_by_gather(
        graph,
        gnet_features,
        &[&|r| 1.0 / r[gnet_channel::SPAN_V], &|r| 1.0 / r[gnet_channel::SPAN_H]],
    )
}

/// §3.2: recovers the expected pin-density map by one-step sum message
/// passing with `f = npin / area` (exact in total mass, approximate per
/// cell).
pub fn recover_pin_density(graph: &LhGraph, gnet_features: &Matrix) -> Matrix {
    recover_by_gather(graph, gnet_features, &[&|r| r[gnet_channel::NPIN] / r[gnet_channel::AREA]])
}

/// §3.2: recovers the RUDY-like map by one-step sum message passing with
/// `f = npin · (spanH + spanV) / area`.
pub fn recover_rudy(graph: &LhGraph, gnet_features: &Matrix) -> Matrix {
    recover_by_gather(
        graph,
        gnet_features,
        &[&|r| {
            r[gnet_channel::NPIN] * (r[gnet_channel::SPAN_H] + r[gnet_channel::SPAN_V])
                / r[gnet_channel::AREA]
        }],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LhGraphConfig;
    use vlsi_netlist::synth::{generate, SynthConfig};
    use vlsi_netlist::{Cell, Net, Pin, Point};
    use vlsi_place::GlobalPlacer;

    fn synth_graph() -> (LhGraph, FeatureSet, Circuit, Placement, GcellGrid) {
        let cfg = SynthConfig { n_cells: 200, grid_nx: 12, grid_ny: 12, ..SynthConfig::default() };
        let synth = generate(&cfg).unwrap();
        let grid = cfg.grid();
        let placed = GlobalPlacer::default().place_synth(&synth, &grid).unwrap();
        let graph =
            LhGraph::build(&synth.circuit, &placed.placement, &grid, &LhGraphConfig::default())
                .unwrap();
        let feats = FeatureSet::build(&graph, &synth.circuit, &placed.placement, &grid).unwrap();
        (graph, feats, synth.circuit, placed.placement, grid)
    }

    #[test]
    fn feature_shapes_match_graph() {
        let (graph, feats, ..) = synth_graph();
        assert_eq!(feats.gnet.shape(), (graph.num_gnets(), 4));
        assert_eq!(feats.gcell.shape(), (graph.num_gcells(), 4));
    }

    #[test]
    fn gnet_area_equals_span_product_and_matches_incidence() {
        let (graph, feats, ..) = synth_graph();
        let col_sums = graph.incidence().col_sums();
        for j in 0..graph.num_gnets() {
            let area = feats.gnet[(j, gnet_channel::AREA)];
            let sv = feats.gnet[(j, gnet_channel::SPAN_V)];
            let sh = feats.gnet[(j, gnet_channel::SPAN_H)];
            assert!((area - sv * sh).abs() < 1e-5);
            assert!((area - col_sums[j]).abs() < 1e-4, "area {area} vs incidence {}", col_sums[j]);
        }
    }

    #[test]
    fn net_density_recovery_is_exact() {
        // the central claim of §3.2: one-step message passing == crafted map
        let (graph, feats, ..) = synth_graph();
        let recovered = recover_net_density(&graph, &feats.gnet);
        for i in 0..graph.num_gcells() {
            assert!(
                (recovered[(i, 0)] - feats.gcell[(i, gcell_channel::NET_DENSITY_H)]).abs() < 1e-3,
                "h density mismatch at {i}"
            );
            assert!(
                (recovered[(i, 1)] - feats.gcell[(i, gcell_channel::NET_DENSITY_V)]).abs() < 1e-3,
                "v density mismatch at {i}"
            );
        }
    }

    #[test]
    fn pin_density_recovery_preserves_total_mass() {
        let (graph, feats, ..) = synth_graph();
        let recovered = recover_pin_density(&graph, &feats.gnet);
        let direct_total: f32 =
            (0..graph.num_gcells()).map(|i| feats.gcell[(i, gcell_channel::PIN_DENSITY)]).sum();
        let rec_total = recovered.sum();
        assert!(
            (direct_total - rec_total).abs() < direct_total * 0.01 + 1e-3,
            "direct {direct_total} vs recovered {rec_total}"
        );
    }

    #[test]
    fn pin_density_recovery_correlates_with_direct() {
        let (graph, feats, ..) = synth_graph();
        let recovered = recover_pin_density(&graph, &feats.gnet);
        let a: Vec<f32> =
            (0..graph.num_gcells()).map(|i| feats.gcell[(i, gcell_channel::PIN_DENSITY)]).collect();
        let b: Vec<f32> = (0..graph.num_gcells()).map(|i| recovered[(i, 0)]).collect();
        let corr = pearson(&a, &b);
        assert!(corr > 0.5, "correlation too low: {corr}");
    }

    /// Pins the shared-gather refactor to the original per-function
    /// implementations: message built channel-by-channel with explicit
    /// loops, then `H · msg` — outputs must match bitwise.
    #[test]
    fn recovery_helpers_match_pre_refactor_outputs_bitwise() {
        let (graph, feats, ..) = synth_graph();
        let n_n = graph.num_gnets();
        let g = &feats.gnet;

        let mut density_msg = Matrix::zeros(n_n.max(1), 2);
        let mut pin_msg = Matrix::zeros(n_n.max(1), 1);
        let mut rudy_msg = Matrix::zeros(n_n.max(1), 1);
        for j in 0..n_n {
            density_msg[(j, 0)] = 1.0 / g[(j, gnet_channel::SPAN_V)];
            density_msg[(j, 1)] = 1.0 / g[(j, gnet_channel::SPAN_H)];
            pin_msg[(j, 0)] = g[(j, gnet_channel::NPIN)] / g[(j, gnet_channel::AREA)];
            rudy_msg[(j, 0)] = g[(j, gnet_channel::NPIN)]
                * (g[(j, gnet_channel::SPAN_H)] + g[(j, gnet_channel::SPAN_V)])
                / g[(j, gnet_channel::AREA)];
        }
        let pairs = [
            (recover_net_density(&graph, g), graph.gnc_sum().spmm(&density_msg)),
            (recover_pin_density(&graph, g), graph.gnc_sum().spmm(&pin_msg)),
            (recover_rudy(&graph, g), graph.gnc_sum().spmm(&rudy_msg)),
        ];
        for (shared, direct) in &pairs {
            assert_eq!(
                shared.fingerprint(),
                direct.fingerprint(),
                "gather refactor must reproduce the original maps bitwise"
            );
        }
    }

    #[test]
    fn grid_shape_mismatch_reports_both_extents() {
        let (graph, _, circuit, placement, _) = synth_graph();
        let other = GcellGrid::new(Rect::new(0.0, 0.0, 8.0, 8.0), 5, 3);
        let err = FeatureSet::build(&graph, &circuit, &placement, &other).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("12x12 = 144"), "expected extents missing: {msg}");
        assert!(msg.contains("5x3 = 15"), "actual extents missing: {msg}");
    }

    #[test]
    fn rudy_recovery_is_positive_where_nets_exist() {
        let (graph, feats, ..) = synth_graph();
        let rudy = recover_rudy(&graph, &feats.gnet);
        assert!(rudy.sum() > 0.0);
        assert!(rudy.as_slice().iter().all(|&v| v >= 0.0));
    }

    fn pearson(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len() as f32;
        let ma = a.iter().sum::<f32>() / n;
        let mb = b.iter().sum::<f32>() / n;
        let cov: f32 = a.iter().zip(b).map(|(&x, &y)| (x - ma) * (y - mb)).sum();
        let va: f32 = a.iter().map(|&x| (x - ma) * (x - ma)).sum();
        let vb: f32 = b.iter().map(|&y| (y - mb) * (y - mb)).sum();
        cov / (va.sqrt() * vb.sqrt()).max(1e-9)
    }

    #[test]
    fn terminal_mask_marks_macro_gcells() {
        let die = Rect::new(0.0, 0.0, 8.0, 8.0);
        let grid = GcellGrid::new(die, 4, 4);
        let mut c = Circuit::new("t", die);
        let m = c.add_cell(Cell::terminal("macro", 4.0, 4.0));
        let a = c.add_cell(Cell::movable("a", 0.2, 0.2));
        let b = c.add_cell(Cell::movable("b", 0.2, 0.2));
        c.add_net(Net::new("n", vec![Pin::at_center(a), Pin::at_center(b)]));
        let mut p = Placement::zeroed(3);
        p.set_position(m, Point::new(2.0, 2.0)); // covers lower-left 2x2 gcells
        p.set_position(a, Point::new(5.0, 5.0));
        p.set_position(b, Point::new(7.0, 7.0));
        let graph = LhGraph::build(
            &c,
            &p,
            &grid,
            &LhGraphConfig { max_gnet_fraction: 1.0, ..Default::default() },
        )
        .unwrap();
        let feats = FeatureSet::build(&graph, &c, &p, &grid).unwrap();
        let mask_at = |gx: u32, gy: u32| {
            feats.gcell
                [(grid.index(vlsi_netlist::GcellCoord { gx, gy }), gcell_channel::TERMINAL_MASK)]
        };
        assert_eq!(mask_at(0, 0), 1.0);
        assert_eq!(mask_at(1, 1), 1.0);
        assert_eq!(mask_at(3, 3), 0.0);
    }

    #[test]
    fn ablated_features_keep_only_terminal_mask() {
        let (_, feats, ..) = synth_graph();
        let ablated = feats.without_gcell_features();
        for r in 0..ablated.gcell.rows() {
            assert_eq!(ablated.gcell[(r, gcell_channel::NET_DENSITY_H)], 0.0);
            assert_eq!(ablated.gcell[(r, gcell_channel::NET_DENSITY_V)], 0.0);
            assert_eq!(ablated.gcell[(r, gcell_channel::PIN_DENSITY)], 0.0);
            assert_eq!(
                ablated.gcell[(r, gcell_channel::TERMINAL_MASK)],
                feats.gcell[(r, gcell_channel::TERMINAL_MASK)]
            );
        }
        assert_eq!(ablated.gnet, feats.gnet);
    }

    #[test]
    fn normalized_features_are_in_unit_range() {
        let (_, feats, ..) = synth_graph();
        let n = feats.normalized();
        for &v in n.gcell.as_slice().iter().chain(n.gnet.as_slice()) {
            assert!((0.0..=1.0).contains(&v), "value {v} outside [0,1]");
        }
    }
}
