//! Receptive-field halo computation over operator sparsity.
//!
//! The LHNN forward is a fixed stack of sparse aggregations (`H`, `D⁻¹H`,
//! `B⁻¹Hᵀ`, `P⁻¹A`) interleaved with row-local dense layers, so a change
//! confined to a set of dirty rows can only influence rows reachable
//! through the *sparsity pattern* of those operators — one hop per
//! aggregation, ≤5 hops for the whole network (2 HyperMP + 3 LatticeMP
//! layers). This module provides the primitive set algebra for tracking
//! that influence exactly:
//!
//! * [`dilate`] — one structural hop: the union of column indices of the
//!   listed rows of a CSR matrix. For an aggregation `y = S·x`, the rows of
//!   `y` that can read a dirty row of `x` are `{r : row r of S hits a dirty
//!   column}` — exactly `dilate(Sᵀ, dirty)`. Callers pass the operator's own
//!   cached transpose (`CsrMatrix::transpose_cached`) rather than a
//!   structurally dual sibling, because ablated or sampled operator sets
//!   replace matrices asymmetrically and the siblings stop matching.
//! * [`union_sorted`] — merge two sorted dirty sets.
//!
//! All row lists are sorted and duplicate-free, the form the masked
//! row-subset kernels in `neurograd::kernels` require. Dilation at a
//! lattice boundary clips naturally: an edge or corner G-cell simply has
//! fewer lattice neighbours, so the halo never leaves the grid.

use neurograd::CsrMatrix;

/// One structural hop: the sorted, duplicate-free union of the column
/// indices of the listed rows of `m`.
///
/// For a sparse aggregation `y = S·x` with dirty input rows `d`, the
/// output rows whose value can change are exactly
/// `dilate(Sᵀ, d) ∪ changed_rows(S)` — pass `S.transpose_cached()` as `m`.
///
/// # Panics
///
/// Panics if a listed row is out of bounds for `m`.
pub fn dilate(m: &CsrMatrix, rows: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(rows.len().saturating_mul(4));
    for &r in rows {
        assert!(r < m.rows(), "dilate: row {} out of bounds for {}x{}", r, m.rows(), m.cols());
        out.extend(m.row_entries(r).map(|(c, _)| c));
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Merges two sorted, duplicate-free index lists into one.
pub fn union_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Sorts and deduplicates an arbitrary index list into canonical form.
pub fn canonicalize(mut rows: Vec<usize>) -> Vec<usize> {
    rows.sort_unstable();
    rows.dedup();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use neurograd::CsrMatrix;

    fn chain(n: usize) -> CsrMatrix {
        // path graph adjacency: i ~ i±1
        let mut t = Vec::new();
        for i in 0..n {
            if i > 0 {
                t.push((i, i - 1, 1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, 1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn dilate_is_one_hop() {
        let m = chain(6);
        assert_eq!(dilate(&m, &[2]), vec![1, 3]);
        assert_eq!(dilate(&m, &[0]), vec![1], "boundary row clips");
        assert_eq!(dilate(&m, &[5]), vec![4], "boundary row clips");
        assert_eq!(dilate(&m, &[1, 4]), vec![0, 2, 3, 5]);
        assert!(dilate(&m, &[]).is_empty());
    }

    #[test]
    fn union_sorted_merges() {
        assert_eq!(union_sorted(&[1, 3, 5], &[2, 3, 6]), vec![1, 2, 3, 5, 6]);
        assert_eq!(union_sorted(&[], &[4]), vec![4]);
        assert_eq!(union_sorted(&[4], &[]), vec![4]);
        let same = [0, 9];
        assert_eq!(union_sorted(&same, &same), vec![0, 9]);
    }

    #[test]
    fn canonicalize_sorts_and_dedups() {
        assert_eq!(canonicalize(vec![5, 1, 5, 0, 1]), vec![0, 1, 5]);
    }
}
