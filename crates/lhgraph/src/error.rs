//! Error type for the `lh-graph` crate.

use std::error::Error as StdError;
use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LhGraphError>;

/// Errors produced while building LH-graphs or feature sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LhGraphError {
    /// The construction produced no usable nodes.
    EmptyGraph(String),
    /// Feature/label dimensions disagree with the graph.
    DimensionMismatch(String),
    /// A graph built on one G-cell grid was used with another: reports
    /// both `nx × ny` products instead of a bare dimension panic.
    GridShape {
        /// `(nx, ny)` the graph was built on.
        expected: (usize, usize),
        /// `(nx, ny)` of the grid it was used with.
        actual: (usize, usize),
    },
}

impl LhGraphError {
    /// Builds the grid-shape mismatch error from the two grids' extents.
    pub fn grid_shape(expected: (usize, usize), actual: (usize, usize)) -> Self {
        LhGraphError::GridShape { expected, actual }
    }
}

impl fmt::Display for LhGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LhGraphError::EmptyGraph(m) => write!(f, "empty lh-graph: {m}"),
            LhGraphError::DimensionMismatch(m) => write!(f, "dimension mismatch: {m}"),
            LhGraphError::GridShape { expected: (enx, eny), actual: (anx, any) } => write!(
                f,
                "grid shape mismatch: graph was built on {enx}x{eny} = {} g-cells, \
                 but was used with a {anx}x{any} = {} g-cell grid",
                enx * eny,
                anx * any
            ),
        }
    }
}

impl StdError for LhGraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(LhGraphError::EmptyGraph("no cells".into()).to_string().contains("no cells"));
        assert!(LhGraphError::DimensionMismatch("x".into()).to_string().contains("x"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LhGraphError>();
    }
}
