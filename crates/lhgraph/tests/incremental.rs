//! Bitwise-equality proptests for the incremental LH-graph path: any
//! sequence of placement deltas routed through `rebin_delta` →
//! `LhGraph::apply_delta` → `FeatureSet::apply_delta` (with a full
//! rebuild on `Structural` outcomes) must leave graph and features
//! **bitwise identical** to a from-scratch build at the final placement.

use lh_graph::{DeltaOutcome, FeatureSet, LhGraph, LhGraphConfig};
use proptest::prelude::*;
use vlsi_netlist::synth::{generate, SynthConfig};
use vlsi_netlist::{
    rebin_delta, CellId, Circuit, GcellGrid, NetId, Placement, PlacementDelta, Point,
};
use vlsi_place::GlobalPlacer;

/// The incremental consumer under test: mirrors what the serving pipeline
/// does per delta, falling back to a full rebuild on structural changes.
struct Harness {
    circuit: Circuit,
    grid: GcellGrid,
    cfg: LhGraphConfig,
    cell_to_nets: Vec<Vec<NetId>>,
    placement: Placement,
    graph: LhGraph,
    features: FeatureSet,
    incremental: usize,
    full_rebuilds: usize,
}

impl Harness {
    fn new(seed: u64, n_cells: usize, grid_side: u32, max_gnet_fraction: f32) -> Self {
        let synth_cfg = SynthConfig {
            seed,
            n_cells,
            grid_nx: grid_side,
            grid_ny: grid_side,
            ..SynthConfig::default()
        };
        let synth = generate(&synth_cfg).expect("synth");
        let grid = synth_cfg.grid();
        let placed = GlobalPlacer::default().place_synth(&synth, &grid).expect("place");
        let cfg = LhGraphConfig { max_gnet_fraction };
        let graph = LhGraph::build(&synth.circuit, &placed.placement, &grid, &cfg).expect("graph");
        let features =
            FeatureSet::build(&graph, &synth.circuit, &placed.placement, &grid).expect("features");
        let cell_to_nets = synth.circuit.cell_to_nets();
        Self {
            circuit: synth.circuit,
            grid,
            cfg,
            cell_to_nets,
            placement: placed.placement,
            graph,
            features,
            incremental: 0,
            full_rebuilds: 0,
        }
    }

    /// Applies one delta through the incremental path. Returns `false`
    /// when the placement became unbuildable (every net filtered), which
    /// a from-scratch build rejects identically.
    fn apply(&mut self, delta: &PlacementDelta) -> bool {
        let before = self.placement.clone();
        let mut after = before.clone();
        delta.apply(&mut after);
        let report =
            rebin_delta(&self.circuit, &self.grid, &before, &after, delta, &self.cell_to_nets);
        self.placement = after;
        if report.is_clean() {
            return true;
        }
        match self.graph.apply_delta(&self.grid, &self.cfg, &report).expect("same grid") {
            DeltaOutcome::Patched(patch) => {
                self.features = self
                    .features
                    .apply_delta(&patch, &report, &self.circuit, &self.placement, &self.grid)
                    .expect("patch belongs to this graph");
                self.graph = patch.graph;
                self.incremental += 1;
                true
            }
            DeltaOutcome::Structural(_) => {
                self.full_rebuilds += 1;
                match LhGraph::build(&self.circuit, &self.placement, &self.grid, &self.cfg) {
                    Ok(graph) => {
                        self.features =
                            FeatureSet::build(&graph, &self.circuit, &self.placement, &self.grid)
                                .expect("features");
                        self.graph = graph;
                        true
                    }
                    Err(_) => false,
                }
            }
        }
    }

    /// Bitwise parity with a from-scratch build at the current placement.
    fn assert_matches_full_rebuild(&self) {
        let graph =
            LhGraph::build(&self.circuit, &self.placement, &self.grid, &self.cfg).expect("rebuild");
        let features = FeatureSet::build(&graph, &self.circuit, &self.placement, &self.grid)
            .expect("rebuild features");
        assert_eq!(self.graph.kept_nets(), graph.kept_nets(), "kept-net mapping diverged");
        assert_eq!(self.graph.spans(), graph.spans(), "span cache diverged");
        for (name, mine, full) in [
            ("incidence", self.graph.incidence(), graph.incidence()),
            ("gnc_sum", self.graph.gnc_sum(), graph.gnc_sum()),
            ("gnc_mean", self.graph.gnc_mean(), graph.gnc_mean()),
            ("gcn_mean", self.graph.gcn_mean(), graph.gcn_mean()),
            ("lattice", self.graph.lattice(), graph.lattice()),
            ("lattice_mean", self.graph.lattice_mean(), graph.lattice_mean()),
        ] {
            assert_eq!(mine.as_ref(), full.as_ref(), "{name} diverged from full rebuild");
            assert_eq!(
                mine.content_fingerprint(),
                full.content_fingerprint(),
                "{name} fingerprint diverged"
            );
        }
        assert_eq!(
            self.features.gnet.fingerprint(),
            features.gnet.fingerprint(),
            "g-net features diverged"
        );
        assert_eq!(
            self.features.gcell.fingerprint(),
            features.gcell.fingerprint(),
            "g-cell features diverged"
        );
        assert_eq!(self.features.fingerprint(), features.fingerprint());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random multi-cell move sequences: after every delta the patched
    /// state equals a from-scratch rebuild, bitwise.
    #[test]
    fn random_delta_sequences_match_full_rebuild(
        seed in 0u64..4,
        moves in proptest::collection::vec(
            (0usize..2048, 0.0f32..1.0, 0.0f32..1.0), 1..24),
        chunk in 1usize..6,
        fraction_sel in 0usize..3,
    ) {
        let fraction = [0.08f32, 0.25, 1.0][fraction_sel];
        let mut h = Harness::new(seed, 80, 8, fraction);
        let die = h.circuit.die;
        for group in moves.chunks(chunk) {
            let mut delta = PlacementDelta::new();
            for &(cell, fx, fy) in group {
                let id = CellId((cell % h.circuit.num_cells()) as u32);
                let p = Point::new(
                    die.lx + fx * die.width(),
                    die.ly + fy * die.height(),
                );
                delta.push(id, p);
            }
            if !h.apply(&delta) {
                return; // unbuildable either way: parity holds trivially
            }
            h.assert_matches_full_rebuild();
        }
    }

    /// Single-cell jitter (the placement-loop steady state) stays on the
    /// incremental path and matches the full rebuild after every step.
    #[test]
    fn single_cell_jitter_matches_full_rebuild(
        seed in 0u64..3,
        steps in proptest::collection::vec((0usize..2048, -0.9f32..0.9, -0.9f32..0.9), 1..16),
    ) {
        let mut h = Harness::new(seed, 100, 8, 0.25);
        let die = h.circuit.die;
        for &(cell, dx, dy) in &steps {
            let id = CellId((cell % h.circuit.num_cells()) as u32);
            let p = h.placement.position(id);
            let np = die.clamp(Point::new(
                p.x + dx * h.grid.gcell_width(),
                p.y + dy * h.grid.gcell_height(),
            ));
            if !h.apply(&PlacementDelta::single(id, np)) {
                return;
            }
        }
        h.assert_matches_full_rebuild();
    }
}

#[test]
fn noop_delta_changes_nothing_and_stays_incremental() {
    let mut h = Harness::new(1, 80, 8, 0.25);
    let before_graph_fp = h.graph.incidence().content_fingerprint();
    let before_feat_fp = h.features.fingerprint();
    // move every cell to the position it already has
    let mut delta = PlacementDelta::new();
    for i in 0..h.circuit.num_cells() {
        let id = CellId(i as u32);
        delta.push(id, h.placement.position(id));
    }
    assert!(h.apply(&delta));
    assert_eq!(h.incremental, 0, "no-op must not trigger a patch");
    assert_eq!(h.full_rebuilds, 0);
    assert_eq!(h.graph.incidence().content_fingerprint(), before_graph_fp);
    assert_eq!(h.features.fingerprint(), before_feat_fp);
    h.assert_matches_full_rebuild();
}

#[test]
fn full_design_move_matches_full_rebuild() {
    let mut h = Harness::new(2, 120, 8, 0.25);
    let die = h.circuit.die;
    // Shift the whole design one g-cell diagonally (clamped at the die
    // edge): dirties most nets at once.
    let mut delta = PlacementDelta::new();
    for i in 0..h.circuit.num_cells() {
        let id = CellId(i as u32);
        let p = h.placement.position(id);
        delta.push(
            id,
            die.clamp(Point::new(p.x + h.grid.gcell_width(), p.y + h.grid.gcell_height())),
        );
    }
    assert!(h.apply(&delta));
    h.assert_matches_full_rebuild();
    assert!(h.incremental + h.full_rebuilds == 1);
}

#[test]
fn untouched_operators_stay_arc_shared_after_patch() {
    let mut h = Harness::new(3, 100, 8, 0.25);
    let lattice_before = std::sync::Arc::as_ptr(h.graph.lattice());
    let lattice_mean_before = std::sync::Arc::as_ptr(h.graph.lattice_mean());
    // nudge one cell across a g-cell boundary until an incremental patch
    // actually fires
    let die = h.circuit.die;
    for i in 0..h.circuit.num_cells() {
        let id = CellId(i as u32);
        let p = h.placement.position(id);
        let np = die.clamp(Point::new(p.x + 1.5 * h.grid.gcell_width(), p.y));
        assert!(h.apply(&PlacementDelta::single(id, np)));
        if h.incremental > 0 {
            break;
        }
    }
    assert!(h.incremental > 0, "no incremental patch fired");
    assert_eq!(
        std::sync::Arc::as_ptr(h.graph.lattice()),
        lattice_before,
        "lattice must be shared, not rebuilt"
    );
    assert_eq!(std::sync::Arc::as_ptr(h.graph.lattice_mean()), lattice_mean_before);
    h.assert_matches_full_rebuild();
}
