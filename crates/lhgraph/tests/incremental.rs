//! Bitwise-equality proptests for the incremental LH-graph path: any
//! sequence of placement deltas routed through `rebin_delta` →
//! `LhGraph::apply_delta` → `FeatureSet::apply_delta` (with a full
//! rebuild on `Structural` outcomes) must leave graph and features
//! **bitwise identical** to a from-scratch build at the final placement —
//! `LhGraph::build_with_columns` with the incremental state's own column
//! layout between compactions, and the canonical `LhGraph::build` right
//! after every compaction (when the layouts coincide).

use lh_graph::{DeltaOutcome, FeatureSet, LhGraph, LhGraphConfig, StructuralReason};
use proptest::prelude::*;
use vlsi_netlist::synth::{generate, SynthConfig};
use vlsi_netlist::{
    rebin_delta, CellId, Circuit, GcellGrid, NetId, Placement, PlacementDelta, Point,
};
use vlsi_place::GlobalPlacer;

/// The incremental consumer under test: mirrors what the serving pipeline
/// does per delta, falling back to a full rebuild on structural changes.
struct Harness {
    circuit: Circuit,
    grid: GcellGrid,
    cfg: LhGraphConfig,
    cell_to_nets: Vec<Vec<NetId>>,
    placement: Placement,
    graph: LhGraph,
    features: FeatureSet,
    incremental: usize,
    /// Patched deltas that carried a size-filter crossing.
    crossings: usize,
    full_rebuilds: usize,
    rebuilds_compaction: usize,
    rebuilds_no_live: usize,
}

impl Harness {
    fn new(seed: u64, n_cells: usize, grid_side: u32, max_gnet_fraction: f32) -> Self {
        let synth_cfg = SynthConfig {
            seed,
            n_cells,
            grid_nx: grid_side,
            grid_ny: grid_side,
            ..SynthConfig::default()
        };
        let synth = generate(&synth_cfg).expect("synth");
        let grid = synth_cfg.grid();
        let placed = GlobalPlacer::default().place_synth(&synth, &grid).expect("place");
        let cfg = LhGraphConfig { max_gnet_fraction, ..LhGraphConfig::default() };
        let graph = LhGraph::build(&synth.circuit, &placed.placement, &grid, &cfg).expect("graph");
        let features =
            FeatureSet::build(&graph, &synth.circuit, &placed.placement, &grid).expect("features");
        let cell_to_nets = synth.circuit.cell_to_nets();
        Self {
            circuit: synth.circuit,
            grid,
            cfg,
            cell_to_nets,
            placement: placed.placement,
            graph,
            features,
            incremental: 0,
            crossings: 0,
            full_rebuilds: 0,
            rebuilds_compaction: 0,
            rebuilds_no_live: 0,
        }
    }

    /// Applies one delta through the incremental path. Returns `false`
    /// when the placement became unbuildable (every net filtered), which
    /// a from-scratch build rejects identically.
    fn apply(&mut self, delta: &PlacementDelta) -> bool {
        let before = self.placement.clone();
        let mut after = before.clone();
        delta.apply(&mut after);
        let report =
            rebin_delta(&self.circuit, &self.grid, &before, &after, delta, &self.cell_to_nets);
        self.placement = after;
        if report.is_clean() {
            return true;
        }
        match self.graph.apply_delta(&self.grid, &self.cfg, &report).expect("same grid") {
            DeltaOutcome::Patched(patch) => {
                if patch.crossed_filter() {
                    self.crossings += 1;
                }
                self.features = self
                    .features
                    .apply_delta(&patch, &report, &self.circuit, &self.placement, &self.grid)
                    .expect("patch belongs to this graph");
                self.graph = patch.graph;
                self.incremental += 1;
                true
            }
            DeltaOutcome::Structural(reason) => {
                self.full_rebuilds += 1;
                match reason {
                    StructuralReason::Compaction { .. } => self.rebuilds_compaction += 1,
                    StructuralReason::NoLiveColumns => self.rebuilds_no_live += 1,
                }
                match LhGraph::build(&self.circuit, &self.placement, &self.grid, &self.cfg) {
                    Ok(graph) => {
                        self.features =
                            FeatureSet::build(&graph, &self.circuit, &self.placement, &self.grid)
                                .expect("features");
                        self.graph = graph;
                        true
                    }
                    Err(_) => false,
                }
            }
        }
    }

    /// Bitwise parity with a from-scratch build at the current placement,
    /// prescribed to the incremental state's own column layout (stable
    /// columns mean the layout is history-dependent between compactions;
    /// liveness is placement-derived, so the reference recomputes it).
    fn assert_matches_full_rebuild(&self) {
        let graph = LhGraph::build_with_columns(
            &self.circuit,
            &self.placement,
            &self.grid,
            &self.cfg,
            self.graph.kept_nets(),
        )
        .expect("rebuild");
        let features = FeatureSet::build(&graph, &self.circuit, &self.placement, &self.grid)
            .expect("rebuild features");
        assert_eq!(self.graph.kept_nets(), graph.kept_nets(), "kept-net mapping diverged");
        assert_eq!(self.graph.tombstoned_gnets(), graph.tombstoned_gnets());
        for j in 0..graph.num_gnets() {
            assert_eq!(
                self.graph.is_tombstone(j),
                graph.is_tombstone(j),
                "liveness diverged at column {j}"
            );
            // a tombstone's span is stale by contract; compare live ones
            if !graph.is_tombstone(j) {
                assert_eq!(self.graph.span_of(j), graph.span_of(j), "span diverged at column {j}");
            }
        }
        for (name, mine, full) in [
            ("incidence", self.graph.incidence(), graph.incidence()),
            ("gnc_sum", self.graph.gnc_sum(), graph.gnc_sum()),
            ("gnc_mean", self.graph.gnc_mean(), graph.gnc_mean()),
            ("gcn_mean", self.graph.gcn_mean(), graph.gcn_mean()),
            ("lattice", self.graph.lattice(), graph.lattice()),
            ("lattice_mean", self.graph.lattice_mean(), graph.lattice_mean()),
        ] {
            assert_eq!(mine.as_ref(), full.as_ref(), "{name} diverged from full rebuild");
            assert_eq!(
                mine.content_fingerprint(),
                full.content_fingerprint(),
                "{name} fingerprint diverged"
            );
        }
        assert_eq!(
            self.features.gnet.fingerprint(),
            features.gnet.fingerprint(),
            "g-net features diverged"
        );
        assert_eq!(
            self.features.gcell.fingerprint(),
            features.gcell.fingerprint(),
            "g-cell features diverged"
        );
        assert_eq!(self.features.fingerprint(), features.fingerprint());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random multi-cell move sequences: after every delta the patched
    /// state equals a from-scratch rebuild, bitwise.
    #[test]
    fn random_delta_sequences_match_full_rebuild(
        seed in 0u64..4,
        moves in proptest::collection::vec(
            (0usize..2048, 0.0f32..1.0, 0.0f32..1.0), 1..24),
        chunk in 1usize..6,
        fraction_sel in 0usize..3,
    ) {
        let fraction = [0.08f32, 0.25, 1.0][fraction_sel];
        let mut h = Harness::new(seed, 80, 8, fraction);
        let die = h.circuit.die;
        for group in moves.chunks(chunk) {
            let mut delta = PlacementDelta::new();
            for &(cell, fx, fy) in group {
                let id = CellId((cell % h.circuit.num_cells()) as u32);
                let p = Point::new(
                    die.lx + fx * die.width(),
                    die.ly + fy * die.height(),
                );
                delta.push(id, p);
            }
            if !h.apply(&delta) {
                return; // unbuildable either way: parity holds trivially
            }
            h.assert_matches_full_rebuild();
        }
    }

    /// Single-cell jitter (the placement-loop steady state) stays on the
    /// incremental path and matches the full rebuild after every step.
    #[test]
    fn single_cell_jitter_matches_full_rebuild(
        seed in 0u64..3,
        steps in proptest::collection::vec((0usize..2048, -0.9f32..0.9, -0.9f32..0.9), 1..16),
    ) {
        let mut h = Harness::new(seed, 100, 8, 0.25);
        let die = h.circuit.die;
        for &(cell, dx, dy) in &steps {
            let id = CellId((cell % h.circuit.num_cells()) as u32);
            let p = h.placement.position(id);
            let np = die.clamp(Point::new(
                p.x + dx * h.grid.gcell_width(),
                p.y + dy * h.grid.gcell_height(),
            ));
            if !h.apply(&PlacementDelta::single(id, np)) {
                return;
            }
        }
        h.assert_matches_full_rebuild();
    }

    /// Forced out-and-back size-filter crossings: every crossing patches
    /// in place (tombstone on the way out, revival/append on the way
    /// back) — zero full rebuilds between compactions — and every patched
    /// state stays bitwise-pinned to the prescribed-layout reference.
    #[test]
    fn forced_crossings_patch_without_rebuilds(
        seed in 0u64..3,
        yanks in proptest::collection::vec(
            (0usize..2048, 0.0f32..1.0, 0.0f32..1.0), 1..8),
    ) {
        let mut h = Harness::new(seed, 80, 8, 0.08);
        h.cfg.max_tombstone_fraction = 1.0; // never compact
        let die = h.circuit.die;
        for &(cell, fx, fy) in &yanks {
            let id = CellId((cell % h.circuit.num_cells()) as u32);
            let home = h.placement.position(id);
            // yank to a random far position (stretching its nets across
            // the die, typically out of the tight filter), then snap back
            let far = Point::new(die.lx + fx * die.width(), die.ly + fy * die.height());
            for &target in &[far, home] {
                if !h.apply(&PlacementDelta::single(id, target)) {
                    return;
                }
                h.assert_matches_full_rebuild();
            }
        }
        prop_assert_eq!(h.rebuilds_compaction, 0, "threshold 1.0 never compacts");
        prop_assert_eq!(
            h.full_rebuilds, h.rebuilds_no_live,
            "a filter crossing must never cause a full rebuild"
        );
    }
}

#[test]
fn noop_delta_changes_nothing_and_stays_incremental() {
    let mut h = Harness::new(1, 80, 8, 0.25);
    let before_graph_fp = h.graph.incidence().content_fingerprint();
    let before_feat_fp = h.features.fingerprint();
    // move every cell to the position it already has
    let mut delta = PlacementDelta::new();
    for i in 0..h.circuit.num_cells() {
        let id = CellId(i as u32);
        delta.push(id, h.placement.position(id));
    }
    assert!(h.apply(&delta));
    assert_eq!(h.incremental, 0, "no-op must not trigger a patch");
    assert_eq!(h.full_rebuilds, 0);
    assert_eq!(h.graph.incidence().content_fingerprint(), before_graph_fp);
    assert_eq!(h.features.fingerprint(), before_feat_fp);
    h.assert_matches_full_rebuild();
}

#[test]
fn full_design_move_matches_full_rebuild() {
    let mut h = Harness::new(2, 120, 8, 0.25);
    let die = h.circuit.die;
    // Shift the whole design one g-cell diagonally (clamped at the die
    // edge): dirties most nets at once.
    let mut delta = PlacementDelta::new();
    for i in 0..h.circuit.num_cells() {
        let id = CellId(i as u32);
        let p = h.placement.position(id);
        delta.push(
            id,
            die.clamp(Point::new(p.x + h.grid.gcell_width(), p.y + h.grid.gcell_height())),
        );
    }
    assert!(h.apply(&delta));
    h.assert_matches_full_rebuild();
    assert!(h.incremental + h.full_rebuilds == 1);
}

#[test]
fn crossings_happen_and_stay_incremental_on_a_tight_filter() {
    // Deterministic companion to the proptest: yank cells far enough that
    // crossings demonstrably occur, and confirm none of them rebuilt.
    let mut h = Harness::new(5, 80, 8, 0.08);
    h.cfg.max_tombstone_fraction = 1.0;
    let die = h.circuit.die;
    for i in 0..h.circuit.num_cells() {
        let id = CellId(i as u32);
        let home = h.placement.position(id);
        let far =
            Point::new(die.ux - h.grid.gcell_width() * 0.5, die.uy - h.grid.gcell_height() * 0.5);
        for &target in &[far, home] {
            if !h.apply(&PlacementDelta::single(id, target)) {
                panic!("all live columns vanished; pick a different seed");
            }
        }
        if h.crossings >= 4 {
            break;
        }
    }
    assert!(h.crossings >= 4, "filter crossings never fired: {}", h.crossings);
    assert_eq!(h.full_rebuilds, 0, "crossings must patch, not rebuild");
    h.assert_matches_full_rebuild();
}

#[test]
fn compaction_rebuild_restores_canonical_layout() {
    // Threshold 0: the first tombstone triggers a compaction, whose
    // fallback is the canonical `LhGraph::build` — after it the layout is
    // ascending/all-live and plain-build parity holds.
    let mut h = Harness::new(4, 80, 8, 0.08);
    h.cfg.max_tombstone_fraction = 0.0;
    let die = h.circuit.die;
    for i in 0..h.circuit.num_cells() {
        let id = CellId(i as u32);
        let far =
            Point::new(die.ux - h.grid.gcell_width() * 0.5, die.uy - h.grid.gcell_height() * 0.5);
        if !h.apply(&PlacementDelta::single(id, far)) {
            panic!("all live columns vanished; pick a different seed");
        }
        if h.rebuilds_compaction > 0 {
            break;
        }
    }
    assert!(h.rebuilds_compaction > 0, "no compaction fired");
    assert_eq!(h.graph.tombstoned_gnets(), 0, "compaction reclaims every tombstone");
    let canonical =
        LhGraph::build(&h.circuit, &h.placement, &h.grid, &h.cfg).expect("canonical build");
    assert_eq!(h.graph.kept_nets(), canonical.kept_nets());
    assert_eq!(
        h.graph.incidence().content_fingerprint(),
        canonical.incidence().content_fingerprint()
    );
    h.assert_matches_full_rebuild();
}

#[test]
fn untouched_operators_stay_arc_shared_after_patch() {
    let mut h = Harness::new(3, 100, 8, 0.25);
    let lattice_before = std::sync::Arc::as_ptr(h.graph.lattice());
    let lattice_mean_before = std::sync::Arc::as_ptr(h.graph.lattice_mean());
    // nudge one cell across a g-cell boundary until an incremental patch
    // actually fires
    let die = h.circuit.die;
    for i in 0..h.circuit.num_cells() {
        let id = CellId(i as u32);
        let p = h.placement.position(id);
        let np = die.clamp(Point::new(p.x + 1.5 * h.grid.gcell_width(), p.y));
        assert!(h.apply(&PlacementDelta::single(id, np)));
        if h.incremental > 0 {
            break;
        }
    }
    assert!(h.incremental > 0, "no incremental patch fired");
    assert_eq!(
        std::sync::Arc::as_ptr(h.graph.lattice()),
        lattice_before,
        "lattice must be shared, not rebuilt"
    );
    assert_eq!(std::sync::Arc::as_ptr(h.graph.lattice_mean()), lattice_mean_before);
    h.assert_matches_full_rebuild();
}
