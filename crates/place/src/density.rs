//! Placement density maps and overflow metrics.
//!
//! Density is measured per G-cell as (movable cell area overlapping the
//! G-cell) / (G-cell area). The spreader consumes these maps; experiments
//! report peak density and overflow as placement-quality metrics.

use vlsi_netlist::{CellId, Circuit, GcellGrid, Placement, Rect};

/// A scalar field over the G-cell grid (row-major, `ny * nx` entries).
#[derive(Debug, Clone, PartialEq)]
pub struct DensityMap {
    nx: usize,
    ny: usize,
    values: Vec<f32>,
}

impl DensityMap {
    /// Creates a zero map with the grid's dimensions.
    pub fn zeros(grid: &GcellGrid) -> Self {
        Self {
            nx: grid.nx() as usize,
            ny: grid.ny() as usize,
            values: vec![0.0; grid.num_gcells()],
        }
    }

    /// Grid columns.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Grid rows.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Raw values (row-major; index `gy * nx + gx`).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Mutable raw values.
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// Value at `(gx, gy)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn at(&self, gx: usize, gy: usize) -> f32 {
        self.values[gy * self.nx + gx]
    }

    /// Mutable value at `(gx, gy)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn at_mut(&mut self, gx: usize, gy: usize) -> &mut f32 {
        &mut self.values[gy * self.nx + gx]
    }

    /// Maximum value (0 for an empty map).
    pub fn max(&self) -> f32 {
        self.values.iter().fold(0.0f32, |m, &v| m.max(v))
    }

    /// Mean value (0 for an empty map).
    pub fn mean(&self) -> f32 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f32>() / self.values.len() as f32
        }
    }

    /// Total overflow: `Σ max(0, v - target)`.
    pub fn overflow(&self, target: f32) -> f32 {
        self.values.iter().map(|&v| (v - target).max(0.0)).sum()
    }

    /// 3×3 box blur, used to smooth gradients for the spreader.
    pub fn box_blur(&self) -> DensityMap {
        let mut out = self.clone();
        for gy in 0..self.ny {
            for gx in 0..self.nx {
                let mut acc = 0.0;
                let mut cnt = 0.0;
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        let (x, y) = (gx as i64 + dx, gy as i64 + dy);
                        if x >= 0 && y >= 0 && (x as usize) < self.nx && (y as usize) < self.ny {
                            acc += self.at(x as usize, y as usize);
                            cnt += 1.0;
                        }
                    }
                }
                *out.at_mut(gx, gy) = acc / cnt;
            }
        }
        out
    }
}

/// Computes the movable-area density map of a placement.
///
/// Each movable cell's rectangle is clipped against every G-cell it
/// overlaps; terminals are excluded (their blockage effect is modelled by
/// the router's capacity map instead).
pub fn density_map(circuit: &Circuit, placement: &Placement, grid: &GcellGrid) -> DensityMap {
    let mut map = DensityMap::zeros(grid);
    let cell_area = grid.gcell_width() * grid.gcell_height();
    for (i, cell) in circuit.cells().iter().enumerate() {
        if cell.is_terminal() {
            continue;
        }
        let p = placement.position(CellId(i as u32));
        let half_w = cell.width * 0.5;
        let half_h = cell.height * 0.5;
        let rect = Rect::new(p.x - half_w, p.y - half_h, p.x + half_w, p.y + half_h);
        let Some((lo, hi)) = grid.span(&rect) else { continue };
        for c in grid.iter_span(lo, hi) {
            if let Some(overlap) = grid.gcell_rect(c).intersection(&rect) {
                map.values[grid.index(c)] += overlap.area() / cell_area;
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_netlist::{Cell, Point};

    fn setup() -> (Circuit, GcellGrid) {
        let die = Rect::new(0.0, 0.0, 8.0, 8.0);
        let c = Circuit::new("d", die);
        let grid = GcellGrid::new(die, 4, 4);
        (c, grid)
    }

    #[test]
    fn single_cell_contributes_its_area() {
        let (mut c, grid) = setup();
        let a = c.add_cell(Cell::movable("a", 1.0, 1.0));
        let mut p = Placement::zeroed(1);
        p.set_position(a, Point::new(1.0, 1.0)); // fully inside g-cell (0,0)
        let map = density_map(&c, &p, &grid);
        assert!((map.at(0, 0) - 0.25).abs() < 1e-6); // 1 area / 4 gcell area
        assert_eq!(map.values().iter().filter(|&&v| v > 0.0).count(), 1);
    }

    #[test]
    fn straddling_cell_splits_area() {
        let (mut c, grid) = setup();
        let a = c.add_cell(Cell::movable("a", 2.0, 2.0));
        let mut p = Placement::zeroed(1);
        p.set_position(a, Point::new(2.0, 2.0)); // centre on the 4-corner
        let map = density_map(&c, &p, &grid);
        for (gx, gy) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
            assert!((map.at(gx, gy) - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn terminals_are_excluded() {
        let (mut c, grid) = setup();
        let t = c.add_cell(Cell::terminal("t", 4.0, 4.0));
        let mut p = Placement::zeroed(1);
        p.set_position(t, Point::new(4.0, 4.0));
        let map = density_map(&c, &p, &grid);
        assert_eq!(map.max(), 0.0);
    }

    #[test]
    fn overflow_counts_excess_only() {
        let (mut c, grid) = setup();
        let a = c.add_cell(Cell::movable("a", 4.0, 4.0)); // area 16 = 4 gcells
        let mut p = Placement::zeroed(1);
        p.set_position(a, Point::new(1.0, 1.0)); // clipped at the corner
        let map = density_map(&c, &p, &grid);
        assert!(map.overflow(0.4) > 0.0);
        assert_eq!(map.overflow(1e9), 0.0);
        // clipped at the die edge: only the on-die part of the cell counts
        assert!(map.values().iter().sum::<f32>() < 16.0 / 4.0);
    }

    #[test]
    fn blur_preserves_mean_on_uniform_field() {
        let (_, grid) = setup();
        let mut m = DensityMap::zeros(&grid);
        m.values_mut().iter_mut().for_each(|v| *v = 2.0);
        let b = m.box_blur();
        assert!(b.values().iter().all(|&v| (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn blur_spreads_a_spike() {
        let (_, grid) = setup();
        let mut m = DensityMap::zeros(&grid);
        *m.at_mut(1, 1) = 9.0;
        let b = m.box_blur();
        assert!(b.at(1, 1) < 9.0);
        assert!(b.at(0, 0) > 0.0);
        assert!(b.at(3, 3) == 0.0);
    }
}
