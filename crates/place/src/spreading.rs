//! Density-driven cell spreading (the legalisation-lite pass).
//!
//! After the quadratic solve, connected cells pile up. This pass moves
//! movable cells down the gradient of a smoothed density field until the
//! worst G-cell utilisation approaches `target_density` — the same role
//! the spreading/filler phases play in DREAMPlace, at a fraction of the
//! machinery. Hotspots are reduced but deliberately not eliminated: real
//! placements keep density peaks, which is where congestion forms.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vlsi_netlist::{CellId, Circuit, GcellGrid, Placement, PlacementDelta, Point};

use crate::density::{density_map, DensityMap};

/// Configuration for [`spread`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpreadConfig {
    /// Number of diffusion iterations.
    pub iters: usize,
    /// Stop early when max density falls below this.
    pub target_density: f32,
    /// Step size in G-cell widths per unit density gradient.
    pub step: f32,
    /// Random jitter magnitude in G-cell widths (tie breaking).
    pub jitter: f32,
    /// RNG seed for the jitter.
    pub seed: u64,
}

impl Default for SpreadConfig {
    fn default() -> Self {
        Self { iters: 40, target_density: 1.0, step: 0.45, jitter: 0.05, seed: 0 }
    }
}

/// Central-difference gradient of a density field at a G-cell.
fn gradient(map: &DensityMap, gx: usize, gy: usize) -> (f32, f32) {
    let xm = if gx > 0 { map.at(gx - 1, gy) } else { map.at(gx, gy) };
    let xp = if gx + 1 < map.nx() { map.at(gx + 1, gy) } else { map.at(gx, gy) };
    let ym = if gy > 0 { map.at(gx, gy - 1) } else { map.at(gx, gy) };
    let yp = if gy + 1 < map.ny() { map.at(gx, gy + 1) } else { map.at(gx, gy) };
    ((xp - xm) * 0.5, (yp - ym) * 0.5)
}

/// Spreads movable cells of `placement` in place; returns the final
/// density map.
pub fn spread(
    circuit: &Circuit,
    placement: &mut Placement,
    grid: &GcellGrid,
    cfg: &SpreadConfig,
) -> DensityMap {
    spread_impl(circuit, placement, grid, cfg, None)
}

/// [`spread`] that additionally emits one [`PlacementDelta`] per diffusion
/// iteration, listing exactly the cells that iteration moved (with their
/// new positions).
///
/// The trajectory is bitwise identical to [`spread`] — both are one
/// implementation; without a sink no delta is even constructed — so a
/// placement loop can feed the deltas to an incremental consumer (e.g.
/// `lhnn`'s `LatticePipeline` or a serving session) and land on exactly
/// the state a batch rebuild would produce. Iterations that move no cell
/// emit no delta.
pub fn spread_with(
    circuit: &Circuit,
    placement: &mut Placement,
    grid: &GcellGrid,
    cfg: &SpreadConfig,
    on_delta: &mut dyn FnMut(PlacementDelta),
) -> DensityMap {
    spread_impl(circuit, placement, grid, cfg, Some(on_delta))
}

fn spread_impl(
    circuit: &Circuit,
    placement: &mut Placement,
    grid: &GcellGrid,
    cfg: &SpreadConfig,
    mut on_delta: Option<&mut dyn FnMut(PlacementDelta)>,
) -> DensityMap {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let gw = grid.gcell_width();
    let gh = grid.gcell_height();
    let mut map = density_map(circuit, placement, grid);
    for _ in 0..cfg.iters {
        if map.max() <= cfg.target_density {
            break;
        }
        let smooth = map.box_blur();
        let mut delta = on_delta.as_ref().map(|_| PlacementDelta::new());
        for (i, cell) in circuit.cells().iter().enumerate() {
            if cell.is_terminal() {
                continue;
            }
            let id = CellId(i as u32);
            let p = placement.position(id);
            let c = grid.locate(p);
            // Trigger on the *raw* density (peaks must not be diluted by
            // smoothing), but walk down the *smoothed* gradient so the
            // direction field is stable.
            let local = map.at(c.gx as usize, c.gy as usize);
            if local <= cfg.target_density {
                continue;
            }
            let (dx, dy) = gradient(&smooth, c.gx as usize, c.gy as usize);
            let mag = (dx * dx + dy * dy).sqrt();
            let (ux, uy) = if mag > 1e-4 {
                (dx / mag, dy / mag)
            } else {
                // Symmetric pile: the gradient vanishes at the peak.
                // Scatter in a random direction to break the tie.
                let angle = rng.gen_range(0.0..std::f32::consts::TAU);
                (angle.cos(), angle.sin())
            };
            let excess = (local - cfg.target_density).min(4.0);
            let jx = rng.gen_range(-cfg.jitter..=cfg.jitter);
            let jy = rng.gen_range(-cfg.jitter..=cfg.jitter);
            let np = circuit.die.clamp(Point::new(
                p.x - (ux * cfg.step * excess + jx) * gw,
                p.y - (uy * cfg.step * excess + jy) * gh,
            ));
            placement.set_position(id, np);
            if let Some(delta) = delta.as_mut() {
                delta.push(id, np);
            }
        }
        if let (Some(delta), Some(sink)) = (delta, on_delta.as_mut()) {
            if !delta.is_empty() {
                sink(delta);
            }
        }
        map = density_map(circuit, placement, grid);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_netlist::{Cell, Rect};

    /// Piles 200 cells on one point and checks spreading reduces peak
    /// density substantially.
    #[test]
    fn spreading_reduces_peak_density() {
        let die = Rect::new(0.0, 0.0, 32.0, 32.0);
        let mut c = Circuit::new("pile", die);
        let mut p = Placement::zeroed(200);
        for i in 0..200 {
            let id = c.add_cell(Cell::movable(format!("c{i}"), 1.0, 1.0));
            p.set_position(id, Point::new(16.0, 16.0));
        }
        let grid = GcellGrid::new(die, 8, 8);
        let before = density_map(&c, &p, &grid).max();
        let after = spread(&c, &mut p, &grid, &SpreadConfig::default()).max();
        assert!(after < before * 0.5, "before {before}, after {after}");
    }

    #[test]
    fn already_spread_placement_is_untouched() {
        let die = Rect::new(0.0, 0.0, 16.0, 16.0);
        let mut c = Circuit::new("ok", die);
        let mut p = Placement::zeroed(4);
        for i in 0..4 {
            let id = c.add_cell(Cell::movable(format!("c{i}"), 1.0, 1.0));
            p.set_position(id, Point::new(2.0 + 4.0 * i as f32, 8.0));
        }
        let grid = GcellGrid::new(die, 4, 4);
        let before = p.clone();
        spread(&c, &mut p, &grid, &SpreadConfig::default());
        for i in 0..4 {
            assert_eq!(p.position(CellId(i)), before.position(CellId(i)));
        }
    }

    #[test]
    fn terminals_never_move() {
        let die = Rect::new(0.0, 0.0, 16.0, 16.0);
        let mut c = Circuit::new("t", die);
        let t = c.add_cell(Cell::terminal("t", 1.0, 1.0));
        let mut p = Placement::zeroed(1);
        p.set_position(t, Point::new(8.0, 8.0));
        // overload the same spot with movables
        let mut ids = Vec::new();
        for i in 0..100 {
            ids.push(c.add_cell(Cell::movable(format!("c{i}"), 1.0, 1.0)));
        }
        let mut p2 = Placement::zeroed(101);
        p2.set_position(t, Point::new(8.0, 8.0));
        for id in &ids {
            p2.set_position(*id, Point::new(8.0, 8.0));
        }
        let grid = GcellGrid::new(die, 4, 4);
        spread(&c, &mut p2, &grid, &SpreadConfig::default());
        assert_eq!(p2.position(t), Point::new(8.0, 8.0));
    }

    #[test]
    fn cells_stay_inside_die() {
        let die = Rect::new(0.0, 0.0, 8.0, 8.0);
        let mut c = Circuit::new("edge", die);
        let mut p = Placement::zeroed(150);
        for i in 0..150 {
            let id = c.add_cell(Cell::movable(format!("c{i}"), 1.0, 1.0));
            p.set_position(id, Point::new(0.5, 0.5)); // corner pile
        }
        let grid = GcellGrid::new(die, 4, 4);
        spread(&c, &mut p, &grid, &SpreadConfig { iters: 60, ..Default::default() });
        for pos in p.positions() {
            assert!(die.contains(*pos), "cell escaped to {pos:?}");
        }
    }

    #[test]
    fn spread_with_deltas_replay_to_identical_placement() {
        let die = Rect::new(0.0, 0.0, 32.0, 32.0);
        let mut c = Circuit::new("pile", die);
        let initial = {
            let mut p = Placement::zeroed(150);
            for i in 0..150 {
                let id = c.add_cell(Cell::movable(format!("c{i}"), 1.0, 1.0));
                p.set_position(id, Point::new(16.0, 16.0));
            }
            p
        };
        let grid = GcellGrid::new(die, 8, 8);
        let cfg = SpreadConfig::default();
        let mut plain = initial.clone();
        spread(&c, &mut plain, &grid, &cfg);
        let mut traced = initial.clone();
        let mut deltas = Vec::new();
        spread_with(&c, &mut traced, &grid, &cfg, &mut |d| deltas.push(d));
        assert_eq!(plain, traced, "delta emission must not perturb the trajectory");
        assert!(!deltas.is_empty());
        let mut replayed = initial;
        for d in &deltas {
            d.apply(&mut replayed);
        }
        assert_eq!(replayed, traced, "replaying the deltas must land on the same placement");
    }

    #[test]
    fn spreading_is_deterministic_per_seed() {
        let die = Rect::new(0.0, 0.0, 16.0, 16.0);
        let mut c = Circuit::new("det", die);
        for i in 0..80 {
            c.add_cell(Cell::movable(format!("c{i}"), 1.0, 1.0));
        }
        let grid = GcellGrid::new(die, 4, 4);
        let make = |seed| {
            let mut p = Placement::zeroed(80);
            for i in 0..80u32 {
                p.set_position(CellId(i), Point::new(8.0, 8.0));
            }
            let cfg = SpreadConfig { seed, ..Default::default() };
            spread(&c, &mut p, &grid, &cfg);
            p
        };
        assert_eq!(make(5), make(5));
        assert_ne!(make(5), make(6));
    }
}
