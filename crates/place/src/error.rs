//! Error type for the `vlsi-place` crate.

use std::error::Error as StdError;
use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PlaceError>;

/// Errors produced by placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// The placer configuration was invalid.
    InvalidConfig(String),
    /// The circuit cannot be placed (e.g. no movable cells).
    Unplaceable(String),
    /// The numeric solve failed to make progress.
    SolveFailed(String),
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::InvalidConfig(m) => write!(f, "invalid placer configuration: {m}"),
            PlaceError::Unplaceable(m) => write!(f, "circuit cannot be placed: {m}"),
            PlaceError::SolveFailed(m) => write!(f, "placement solve failed: {m}"),
        }
    }
}

impl StdError for PlaceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(PlaceError::InvalidConfig("bad".into()).to_string().contains("bad"));
        assert!(PlaceError::Unplaceable("x".into()).to_string().contains("placed"));
        assert!(PlaceError::SolveFailed("y".into()).to_string().contains("solve"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlaceError>();
    }
}
