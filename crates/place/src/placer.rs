//! End-to-end placement pipelines.
//!
//! [`GlobalPlacer`] chains the quadratic solve and the density spreader —
//! the standard analytic-placement recipe (the DREAMPlace stand-in used to
//! produce every placement in the reproduction). [`RandomPlacer`] provides
//! a degenerate baseline for tests and ablations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vlsi_netlist::{CellId, Circuit, GcellGrid, Placement, PlacementDelta, Point, SynthCircuit};

use crate::density::DensityMap;
use crate::error::Result;
use crate::quadratic::{solve_quadratic, QuadraticConfig};
use crate::spreading::{spread, spread_with, SpreadConfig};

/// Configuration of the global placer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GlobalPlacerConfig {
    /// Quadratic-solve settings.
    pub quadratic: QuadraticConfig,
    /// Spreading settings.
    pub spreading: SpreadConfig,
}

/// Quadratic placement followed by density spreading.
#[derive(Debug, Clone, Default)]
pub struct GlobalPlacer {
    cfg: GlobalPlacerConfig,
}

/// The result of a placement run: positions plus quality metrics.
#[derive(Debug, Clone)]
pub struct PlacementResult {
    /// The placement solution.
    pub placement: Placement,
    /// Final movable-area density map.
    pub density: DensityMap,
    /// Total HPWL after placement.
    pub hpwl: f64,
}

/// The delta view of a placement run: a starting placement plus the
/// ordered deltas whose replay reproduces the final placement exactly.
///
/// This is what a placement-in-the-loop consumer feeds to an incremental
/// pipeline: open a session at [`PlacementTrace::initial`], then apply the
/// deltas one iteration at a time, querying congestion in between.
#[derive(Debug, Clone)]
pub struct PlacementTrace {
    /// The placement the deltas start from (all cells at the origin; the
    /// quadratic solve is the first delta).
    pub initial: Placement,
    /// One delta for the quadratic solve, then one per spreading
    /// iteration that moved at least one cell.
    pub deltas: Vec<PlacementDelta>,
}

impl PlacementTrace {
    /// Replays all deltas onto a copy of the initial placement.
    pub fn replay(&self) -> Placement {
        let mut p = self.initial.clone();
        for d in &self.deltas {
            d.apply(&mut p);
        }
        p
    }
}

impl GlobalPlacer {
    /// Creates a placer with the given configuration.
    pub fn new(cfg: GlobalPlacerConfig) -> Self {
        Self { cfg }
    }

    /// Places a circuit. `fixed` pins terminal positions.
    ///
    /// # Errors
    ///
    /// Propagates quadratic-solve failures.
    pub fn place(
        &self,
        circuit: &Circuit,
        fixed: &[(CellId, Point)],
        grid: &GcellGrid,
    ) -> Result<PlacementResult> {
        let mut placement = solve_quadratic(circuit, fixed, None, &self.cfg.quadratic)?;
        let density = spread(circuit, &mut placement, grid, &self.cfg.spreading);
        let hpwl = placement.total_hpwl(circuit);
        Ok(PlacementResult { placement, density, hpwl })
    }

    /// Places a circuit while recording the iteration-level deltas: one
    /// [`PlacementDelta`] for the quadratic solve, then one per spreading
    /// iteration (as emitted by [`crate::spread_with`]).
    ///
    /// The returned result is identical to [`GlobalPlacer::place`] (the
    /// deterministic trajectory is shared; equality is pinned by
    /// `traced_placement_matches_plain_and_replays_exactly`) and
    /// `trace.replay()` reproduces `result.placement` exactly.
    ///
    /// # Errors
    ///
    /// Propagates quadratic-solve failures.
    pub fn place_traced(
        &self,
        circuit: &Circuit,
        fixed: &[(CellId, Point)],
        grid: &GcellGrid,
    ) -> Result<(PlacementResult, PlacementTrace)> {
        let initial = Placement::zeroed(circuit.num_cells());
        let mut placement = solve_quadratic(circuit, fixed, None, &self.cfg.quadratic)?;
        let mut deltas = Vec::new();
        let mut quad = PlacementDelta::new();
        for i in 0..circuit.num_cells() {
            let id = CellId(i as u32);
            if placement.position(id) != initial.position(id) {
                quad.push(id, placement.position(id));
            }
        }
        if !quad.is_empty() {
            deltas.push(quad);
        }
        let density = spread_with(circuit, &mut placement, grid, &self.cfg.spreading, &mut |d| {
            deltas.push(d);
        });
        let hpwl = placement.total_hpwl(circuit);
        Ok((PlacementResult { placement, density, hpwl }, PlacementTrace { initial, deltas }))
    }

    /// Places a synthetic design using its generated terminal anchors.
    ///
    /// # Errors
    ///
    /// Propagates quadratic-solve failures.
    pub fn place_synth(&self, synth: &SynthCircuit, grid: &GcellGrid) -> Result<PlacementResult> {
        self.place(&synth.circuit, &synth.fixed_positions, grid)
    }

    /// [`GlobalPlacer::place_traced`] for a synthetic design.
    ///
    /// # Errors
    ///
    /// Propagates quadratic-solve failures.
    pub fn place_synth_traced(
        &self,
        synth: &SynthCircuit,
        grid: &GcellGrid,
    ) -> Result<(PlacementResult, PlacementTrace)> {
        self.place_traced(&synth.circuit, &synth.fixed_positions, grid)
    }
}

/// Places every movable cell uniformly at random (terminals at `fixed`).
#[derive(Debug, Clone)]
pub struct RandomPlacer {
    /// RNG seed.
    pub seed: u64,
}

impl RandomPlacer {
    /// Creates a random placer with a seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Produces a random placement.
    pub fn place(&self, circuit: &Circuit, fixed: &[(CellId, Point)]) -> Placement {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let die = circuit.die;
        let mut placement = Placement::zeroed(circuit.num_cells());
        for i in 0..circuit.num_cells() {
            let p = Point::new(rng.gen_range(die.lx..=die.ux), rng.gen_range(die.ly..=die.uy));
            placement.set_position(CellId(i as u32), p);
        }
        for (id, p) in fixed {
            placement.set_position(*id, *p);
        }
        placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_netlist::synth::{generate, SynthConfig};

    fn small_synth() -> (vlsi_netlist::SynthCircuit, GcellGrid) {
        let cfg = SynthConfig { n_cells: 300, grid_nx: 16, grid_ny: 16, ..SynthConfig::default() };
        let synth = generate(&cfg).unwrap();
        let grid = cfg.grid();
        (synth, grid)
    }

    #[test]
    fn global_placer_beats_random_on_hpwl() {
        let (synth, grid) = small_synth();
        let placer = GlobalPlacer::default();
        let result = placer.place_synth(&synth, &grid).unwrap();
        let random = RandomPlacer::new(1).place(&synth.circuit, &synth.fixed_positions);
        let random_hpwl = random.total_hpwl(&synth.circuit);
        assert!(
            result.hpwl < random_hpwl * 0.8,
            "global {} vs random {}",
            result.hpwl,
            random_hpwl
        );
    }

    #[test]
    fn placements_land_inside_die() {
        let (synth, grid) = small_synth();
        let result = GlobalPlacer::default().place_synth(&synth, &grid).unwrap();
        let die = synth.circuit.die;
        for p in result.placement.positions() {
            assert!(die.contains(*p));
        }
    }

    #[test]
    fn terminals_keep_their_fixed_positions() {
        let (synth, grid) = small_synth();
        let result = GlobalPlacer::default().place_synth(&synth, &grid).unwrap();
        for (id, p) in &synth.fixed_positions {
            assert_eq!(result.placement.position(*id), *p);
        }
    }

    #[test]
    fn placement_is_deterministic() {
        let (synth, grid) = small_synth();
        let a = GlobalPlacer::default().place_synth(&synth, &grid).unwrap();
        let b = GlobalPlacer::default().place_synth(&synth, &grid).unwrap();
        assert_eq!(a.placement, b.placement);
    }

    #[test]
    fn density_metrics_are_populated() {
        let (synth, grid) = small_synth();
        let result = GlobalPlacer::default().place_synth(&synth, &grid).unwrap();
        assert!(result.density.max() > 0.0);
        assert!(result.hpwl > 0.0);
    }

    #[test]
    fn traced_placement_matches_plain_and_replays_exactly() {
        let (synth, grid) = small_synth();
        let placer = GlobalPlacer::default();
        let plain = placer.place_synth(&synth, &grid).unwrap();
        let (traced, trace) = placer.place_synth_traced(&synth, &grid).unwrap();
        assert_eq!(plain.placement, traced.placement, "trace recording must not change placement");
        assert_eq!(trace.replay(), traced.placement, "delta replay must reproduce the result");
        assert!(!trace.deltas.is_empty(), "quadratic solve must emit a delta");
        // quadratic delta first, spreading iterations after
        assert!(trace.deltas[0].len() >= synth.circuit.num_movable());
    }

    #[test]
    fn random_placer_is_seed_deterministic() {
        let (synth, _) = small_synth();
        let a = RandomPlacer::new(3).place(&synth.circuit, &synth.fixed_positions);
        let b = RandomPlacer::new(3).place(&synth.circuit, &synth.fixed_positions);
        let c = RandomPlacer::new(4).place(&synth.circuit, &synth.fixed_positions);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
