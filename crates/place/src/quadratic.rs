//! Quadratic (analytic) global placement.
//!
//! This is the DREAMPlace stand-in: nets are modelled as cliques with
//! degree-normalised weights, giving a convex quadratic wirelength
//! objective. Terminal cells are fixed boundary conditions; the two axes
//! decouple and each is solved by conjugate gradient on the connectivity
//! Laplacian. A small anchor regularisation keeps disconnected components
//! well-posed.

use std::collections::HashMap;

use vlsi_netlist::{CellId, Circuit, Placement, Point};

use crate::error::{PlaceError, Result};

/// Sparse symmetric positive-definite system `A x = b` in adjacency form.
#[derive(Debug, Clone)]
struct Laplacian {
    /// Diagonal entries (degree + anchors).
    diag: Vec<f64>,
    /// Off-diagonal entries per row: `(col, weight)` with weight > 0
    /// meaning matrix entry `-weight`.
    off: Vec<Vec<(u32, f64)>>,
}

impl Laplacian {
    fn new(n: usize) -> Self {
        Self { diag: vec![0.0; n], off: vec![Vec::new(); n] }
    }

    fn apply(&self, x: &[f64], out: &mut [f64]) {
        for i in 0..x.len() {
            let mut acc = self.diag[i] * x[i];
            for &(j, w) in &self.off[i] {
                acc -= w * x[j as usize];
            }
            out[i] = acc;
        }
    }
}

/// Conjugate-gradient solve; returns the achieved relative residual.
fn conjugate_gradient(a: &Laplacian, b: &[f64], x: &mut [f64], iters: usize, tol: f64) -> f64 {
    let n = b.len();
    let mut r = vec![0.0; n];
    let mut ax = vec![0.0; n];
    a.apply(x, &mut ax);
    for i in 0..n {
        r[i] = b[i] - ax[i];
    }
    let mut p = r.clone();
    let mut rs_old: f64 = r.iter().map(|v| v * v).sum();
    let b_norm: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-12);
    let mut ap = vec![0.0; n];
    for _ in 0..iters {
        if rs_old.sqrt() / b_norm < tol {
            break;
        }
        a.apply(&p, &mut ap);
        let p_ap: f64 = p.iter().zip(&ap).map(|(a, b)| a * b).sum();
        if p_ap.abs() < 1e-30 {
            break;
        }
        let alpha = rs_old / p_ap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new: f64 = r.iter().map(|v| v * v).sum();
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    rs_old.sqrt() / b_norm
}

/// Configuration for [`solve_quadratic`].
#[derive(Debug, Clone, PartialEq)]
pub struct QuadraticConfig {
    /// Maximum conjugate-gradient iterations per axis.
    pub cg_iters: usize,
    /// Relative-residual convergence tolerance.
    pub cg_tol: f64,
    /// Anchor weight pulling every movable cell towards the die centre;
    /// keeps fully-movable components well-posed. Should be small relative
    /// to net weights (which are ≥ `1/(max_degree-1)`).
    pub anchor_weight: f64,
    /// Nets with more pins than this are skipped in the quadratic model
    /// (clique blow-up guard; mirrors how analytic placers special-case
    /// high-fanout nets).
    pub max_clique_degree: usize,
}

impl Default for QuadraticConfig {
    fn default() -> Self {
        Self { cg_iters: 300, cg_tol: 1e-6, anchor_weight: 1e-3, max_clique_degree: 64 }
    }
}

/// Solves the quadratic placement for all movable cells.
///
/// `fixed` supplies positions for terminal cells (and any movable cell you
/// want pinned); unlisted terminals default to the die centre. `initial`
/// optionally warm-starts the solve.
///
/// # Errors
///
/// Returns [`PlaceError::Unplaceable`] if the circuit has no movable cells
/// and [`PlaceError::SolveFailed`] if CG stalls at a large residual.
pub fn solve_quadratic(
    circuit: &Circuit,
    fixed: &[(CellId, Point)],
    initial: Option<&Placement>,
    cfg: &QuadraticConfig,
) -> Result<Placement> {
    let n = circuit.num_cells();
    let fixed_map: HashMap<u32, Point> = fixed.iter().map(|(id, p)| (id.0, *p)).collect();
    let die_center = circuit.die.center();

    // Unknown index per movable cell.
    let mut unknown = vec![u32::MAX; n];
    let mut movables = Vec::new();
    for (i, cell) in circuit.cells().iter().enumerate() {
        if !cell.is_terminal() && !fixed_map.contains_key(&(i as u32)) {
            unknown[i] = movables.len() as u32;
            movables.push(i as u32);
        }
    }
    if movables.is_empty() {
        return Err(PlaceError::Unplaceable("no movable cells".into()));
    }
    let m = movables.len();

    // Fixed-cell position lookup.
    let pos_of_fixed =
        |i: usize| -> Point { fixed_map.get(&(i as u32)).copied().unwrap_or(die_center) };

    let mut lap = Laplacian::new(m);
    let mut bx = vec![0.0f64; m];
    let mut by = vec![0.0f64; m];

    // Anchor regularisation.
    for i in 0..m {
        lap.diag[i] += cfg.anchor_weight;
        bx[i] += cfg.anchor_weight * f64::from(die_center.x);
        by[i] += cfg.anchor_weight * f64::from(die_center.y);
    }

    // Clique net model.
    for net in circuit.nets() {
        let d = net.degree();
        if d < 2 || d > cfg.max_clique_degree {
            continue;
        }
        let w = 1.0 / (d as f64 - 1.0);
        for a in 0..d {
            for b in (a + 1)..d {
                let (ca, cb) = (net.pins[a].cell.index(), net.pins[b].cell.index());
                if ca == cb {
                    continue;
                }
                let (ua, ub) = (unknown[ca], unknown[cb]);
                match (ua != u32::MAX, ub != u32::MAX) {
                    (true, true) => {
                        lap.diag[ua as usize] += w;
                        lap.diag[ub as usize] += w;
                        lap.off[ua as usize].push((ub, w));
                        lap.off[ub as usize].push((ua, w));
                    }
                    (true, false) => {
                        let p = pos_of_fixed(cb);
                        lap.diag[ua as usize] += w;
                        bx[ua as usize] += w * f64::from(p.x);
                        by[ua as usize] += w * f64::from(p.y);
                    }
                    (false, true) => {
                        let p = pos_of_fixed(ca);
                        lap.diag[ub as usize] += w;
                        bx[ub as usize] += w * f64::from(p.x);
                        by[ub as usize] += w * f64::from(p.y);
                    }
                    (false, false) => {}
                }
            }
        }
    }

    // Warm start.
    let mut x = vec![f64::from(die_center.x); m];
    let mut y = vec![f64::from(die_center.y); m];
    if let Some(init) = initial {
        for (u, &ci) in movables.iter().enumerate() {
            let p = init.position(CellId(ci));
            x[u] = f64::from(p.x);
            y[u] = f64::from(p.y);
        }
    }

    let rx = conjugate_gradient(&lap, &bx, &mut x, cfg.cg_iters, cfg.cg_tol);
    let ry = conjugate_gradient(&lap, &by, &mut y, cfg.cg_iters, cfg.cg_tol);
    if rx > 0.5 || ry > 0.5 {
        return Err(PlaceError::SolveFailed(format!(
            "cg residuals too large: x {rx:.2e}, y {ry:.2e}"
        )));
    }

    // Assemble full placement.
    let mut placement = Placement::zeroed(n);
    for i in 0..n {
        let p = if unknown[i] != u32::MAX {
            let u = unknown[i] as usize;
            circuit.die.clamp(Point::new(x[u] as f32, y[u] as f32))
        } else {
            pos_of_fixed(i)
        };
        placement.set_position(CellId(i as u32), p);
    }
    Ok(placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlsi_netlist::{Cell, Net, Pin, Rect};

    /// Chain a - m - b with a, b fixed: m must land midway.
    #[test]
    fn single_cell_lands_at_midpoint() {
        let mut c = Circuit::new("chain", Rect::new(0.0, 0.0, 10.0, 10.0));
        let a = c.add_cell(Cell::terminal("a", 1.0, 1.0));
        let m = c.add_cell(Cell::movable("m", 1.0, 1.0));
        let b = c.add_cell(Cell::terminal("b", 1.0, 1.0));
        c.add_net(Net::new("n0", vec![Pin::at_center(a), Pin::at_center(m)]));
        c.add_net(Net::new("n1", vec![Pin::at_center(m), Pin::at_center(b)]));
        let fixed = vec![(a, Point::new(0.0, 0.0)), (b, Point::new(10.0, 10.0))];
        let cfg = QuadraticConfig { anchor_weight: 0.0, ..Default::default() };
        let p = solve_quadratic(&c, &fixed, None, &cfg).unwrap();
        let pm = p.position(m);
        assert!((pm.x - 5.0).abs() < 1e-2, "x = {}", pm.x);
        assert!((pm.y - 5.0).abs() < 1e-2, "y = {}", pm.y);
    }

    /// Chain with unequal weights: two nets to a, one to b → closer to a.
    #[test]
    fn weighted_pull_moves_towards_stronger_side() {
        let mut c = Circuit::new("pull", Rect::new(0.0, 0.0, 10.0, 10.0));
        let a = c.add_cell(Cell::terminal("a", 1.0, 1.0));
        let m = c.add_cell(Cell::movable("m", 1.0, 1.0));
        let b = c.add_cell(Cell::terminal("b", 1.0, 1.0));
        c.add_net(Net::new("n0", vec![Pin::at_center(a), Pin::at_center(m)]));
        c.add_net(Net::new("n1", vec![Pin::at_center(a), Pin::at_center(m)]));
        c.add_net(Net::new("n2", vec![Pin::at_center(m), Pin::at_center(b)]));
        let fixed = vec![(a, Point::new(0.0, 5.0)), (b, Point::new(9.0, 5.0))];
        let cfg = QuadraticConfig { anchor_weight: 0.0, ..Default::default() };
        let p = solve_quadratic(&c, &fixed, None, &cfg).unwrap();
        assert!((p.position(m).x - 3.0).abs() < 1e-2, "x = {}", p.position(m).x);
    }

    /// A disconnected movable cell is held at the die centre by the anchor.
    #[test]
    fn disconnected_cell_anchored_to_center() {
        let mut c = Circuit::new("disc", Rect::new(0.0, 0.0, 10.0, 10.0));
        let a = c.add_cell(Cell::movable("a", 1.0, 1.0));
        let b = c.add_cell(Cell::movable("b", 1.0, 1.0));
        c.add_net(Net::new("n0", vec![Pin::at_center(a), Pin::at_center(b)]));
        let p = solve_quadratic(&c, &[], None, &QuadraticConfig::default()).unwrap();
        assert!((p.position(a).x - 5.0).abs() < 1e-2);
        assert!((p.position(a).y - 5.0).abs() < 1e-2);
    }

    /// Clique model: 4-pin net among 3 movables + 1 fixed collapses the
    /// movables onto the fixed pin (the quadratic optimum with no anchors
    /// elsewhere).
    #[test]
    fn clique_collapses_to_fixed_pin() {
        let mut c = Circuit::new("clique", Rect::new(0.0, 0.0, 8.0, 8.0));
        let f = c.add_cell(Cell::terminal("f", 1.0, 1.0));
        let m1 = c.add_cell(Cell::movable("m1", 1.0, 1.0));
        let m2 = c.add_cell(Cell::movable("m2", 1.0, 1.0));
        let m3 = c.add_cell(Cell::movable("m3", 1.0, 1.0));
        c.add_net(Net::new(
            "n",
            vec![Pin::at_center(f), Pin::at_center(m1), Pin::at_center(m2), Pin::at_center(m3)],
        ));
        let fixed = vec![(f, Point::new(2.0, 6.0))];
        let cfg = QuadraticConfig { anchor_weight: 0.0, ..Default::default() };
        let p = solve_quadratic(&c, &fixed, None, &cfg).unwrap();
        for m in [m1, m2, m3] {
            assert!(p.position(m).distance(Point::new(2.0, 6.0)) < 1e-2);
        }
    }

    #[test]
    fn no_movable_cells_is_an_error() {
        let mut c = Circuit::new("allfixed", Rect::new(0.0, 0.0, 4.0, 4.0));
        c.add_cell(Cell::terminal("t", 1.0, 1.0));
        let err = solve_quadratic(&c, &[], None, &QuadraticConfig::default()).unwrap_err();
        assert!(matches!(err, PlaceError::Unplaceable(_)));
    }

    #[test]
    fn positions_are_clamped_to_die() {
        // fixed pins outside the die drag the movable; result must clamp.
        let mut c = Circuit::new("clamp", Rect::new(0.0, 0.0, 4.0, 4.0));
        let f = c.add_cell(Cell::terminal("f", 1.0, 1.0));
        let m = c.add_cell(Cell::movable("m", 1.0, 1.0));
        c.add_net(Net::new("n", vec![Pin::at_center(f), Pin::at_center(m)]));
        let fixed = vec![(f, Point::new(100.0, 100.0))];
        let cfg = QuadraticConfig { anchor_weight: 0.0, ..Default::default() };
        let p = solve_quadratic(&c, &fixed, None, &cfg).unwrap();
        let pm = p.position(m);
        assert!(pm.x <= 4.0 && pm.y <= 4.0);
    }

    #[test]
    fn warm_start_gives_same_answer() {
        let mut c = Circuit::new("warm", Rect::new(0.0, 0.0, 10.0, 10.0));
        let a = c.add_cell(Cell::terminal("a", 1.0, 1.0));
        let m = c.add_cell(Cell::movable("m", 1.0, 1.0));
        c.add_net(Net::new("n", vec![Pin::at_center(a), Pin::at_center(m)]));
        let fixed = vec![(a, Point::new(2.0, 2.0))];
        let cfg = QuadraticConfig::default();
        let cold = solve_quadratic(&c, &fixed, None, &cfg).unwrap();
        let mut init = Placement::zeroed(2);
        init.set_position(m, Point::new(9.0, 9.0));
        let warm = solve_quadratic(&c, &fixed, Some(&init), &cfg).unwrap();
        assert!(cold.position(m).distance(warm.position(m)) < 1e-2);
    }
}
