//! `vlsi-place` — analytic global placement for the LHNN reproduction.
//!
//! The paper generates its training placements with DREAMPlace; this crate
//! is the stand-in (see DESIGN.md). It implements the classic analytic
//! recipe:
//!
//! 1. [`quadratic`] — clique-model quadratic wirelength minimisation with
//!    fixed terminals, solved per axis by conjugate gradient,
//! 2. [`spreading`] — density-driven diffusion that relieves overlap while
//!    retaining realistic hotspots,
//! 3. [`density`] — the density maps and overflow metrics used by both.
//!
//! [`GlobalPlacer`] chains the steps; [`RandomPlacer`] is a degenerate
//! baseline.
//!
//! # Example
//!
//! ```
//! use vlsi_netlist::synth::{generate, SynthConfig};
//! use vlsi_place::GlobalPlacer;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = SynthConfig { n_cells: 120, grid_nx: 8, grid_ny: 8, ..SynthConfig::default() };
//! let synth = generate(&cfg)?;
//! let result = GlobalPlacer::default().place_synth(&synth, &cfg.grid())?;
//! assert!(result.hpwl > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod density;
pub mod error;
pub mod placer;
pub mod quadratic;
pub mod spreading;

pub use density::{density_map, DensityMap};
pub use error::{PlaceError, Result};
pub use placer::{GlobalPlacer, GlobalPlacerConfig, PlacementResult, PlacementTrace, RandomPlacer};
pub use quadratic::{solve_quadratic, QuadraticConfig};
pub use spreading::{spread, spread_with, SpreadConfig};
