//! `lhnn-suite` — facade over the LHNN reproduction workspace.
//!
//! Re-exports every crate of the reproduction of *"LHNN: Lattice
//! Hypergraph Neural Network for VLSI Congestion Prediction"* (Wang et
//! al., DAC 2022) so downstream users can depend on a single crate:
//!
//! * [`netlist`] — circuit model, Bookshelf I/O, synthetic benchmarks,
//! * [`place`] — analytic global placement (DREAMPlace stand-in),
//! * [`route`] — global routing and congestion labels (NCTU-GR stand-in),
//! * [`graph`] — the LH-graph formulation (paper §3),
//! * [`nn`] — the `neurograd` deep-learning substrate,
//! * [`model`] — the LHNN architecture and training (paper §4),
//! * [`baselines`] — MLP / U-Net / Pix2Pix comparators (paper §5),
//! * [`data`] — dataset assembly and the experiment harness,
//! * [`serve`] — the batched, multi-threaded inference engine (model
//!   registry, worker pool, LRU prediction cache),
//! * [`obs`] — the zero-dependency metrics registry, stage tracing and
//!   flight recorder threaded through the serving stack.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs`; the one-paragraph version:
//!
//! ```
//! use lhnn_suite::netlist::synth::{generate, SynthConfig};
//! use lhnn_suite::place::GlobalPlacer;
//! use lhnn_suite::route::{route, RouterConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let cfg = SynthConfig { n_cells: 150, grid_nx: 8, grid_ny: 8, ..SynthConfig::default() };
//! let synth = generate(&cfg)?;
//! let grid = cfg.grid();
//! let placed = GlobalPlacer::default().place_synth(&synth, &grid)?;
//! let routed = route(&synth.circuit, &placed.placement, &grid,
//!                    &synth.macro_rects, &RouterConfig::default())?;
//! println!("congestion rate: {:.1}%", routed.congestion_rate() * 100.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use lh_graph as graph;
pub use lhnn as model;
pub use lhnn_baselines as baselines;
pub use lhnn_data as data;
pub use lhnn_obs as obs;
pub use lhnn_serve as serve;
pub use neurograd as nn;
pub use vlsi_netlist as netlist;
pub use vlsi_place as place;
pub use vlsi_route as route;
