//! Property-based tests (proptest) over the core data structures and
//! invariants of the reproduction.

use lhnn_suite::netlist::{GcellGrid, Point, Rect};
use lhnn_suite::nn::{CsrMatrix, Matrix};
use lhnn_suite::route::{candidate_paths, mst_segments, EdgeField, Segment};
use proptest::prelude::*;
use vlsi_netlist::GcellCoord;

proptest! {
    /// Sparse × dense always agrees with the dense reference product.
    #[test]
    fn spmm_matches_dense(
        rows in 1usize..8,
        cols in 1usize..8,
        x_cols in 1usize..5,
        entries in proptest::collection::vec((0usize..8, 0usize..8, -5.0f32..5.0), 0..24),
        x_data in proptest::collection::vec(-5.0f32..5.0, 1..320),
    ) {
        let triplets: Vec<(usize, usize, f32)> = entries
            .into_iter()
            .map(|(r, c, v)| (r % rows, c % cols, v))
            .collect();
        let s = CsrMatrix::from_triplets(rows, cols, &triplets);
        let mut data = x_data;
        data.resize(cols * x_cols, 0.5);
        let x = Matrix::from_vec(cols, x_cols, data).unwrap();
        let sparse = s.spmm(&x);
        let dense = s.to_dense().matmul(&x);
        prop_assert!(sparse.approx_eq(&dense, 1e-3));
    }

    /// Transposing twice is the identity, for the sparse type.
    #[test]
    fn csr_transpose_involution(
        entries in proptest::collection::vec((0usize..6, 0usize..6, -3.0f32..3.0), 0..20),
    ) {
        let s = CsrMatrix::from_triplets(6, 6, &entries);
        let tt = s.transpose().transpose();
        prop_assert!(s.to_dense().approx_eq(&tt.to_dense(), 1e-6));
    }

    /// Row-normalised matrices have row sums of exactly 0 or 1.
    #[test]
    fn row_normalisation_is_stochastic(
        entries in proptest::collection::vec((0usize..6, 0usize..6, 0.1f32..3.0), 0..20),
    ) {
        let s = CsrMatrix::from_triplets(6, 6, &entries).row_normalized();
        for sum in s.row_sums() {
            prop_assert!(sum.abs() < 1e-5 || (sum - 1.0).abs() < 1e-4);
        }
    }

    /// Grid locate is the inverse of gcell_rect membership.
    #[test]
    fn grid_locate_consistency(
        nx in 1u32..12,
        ny in 1u32..12,
        px in 0.0f32..100.0,
        py in 0.0f32..100.0,
    ) {
        let grid = GcellGrid::new(Rect::new(0.0, 0.0, 100.0, 100.0), nx, ny);
        let p = Point::new(px, py);
        let c = grid.locate(p);
        let rect = grid.gcell_rect(c);
        // the located cell's rect contains the (clamped) point
        prop_assert!(rect.contains(Point::new(
            px.clamp(rect.lx, rect.ux),
            py.clamp(rect.ly, rect.uy),
        )));
        // index/coord roundtrip
        prop_assert_eq!(grid.coord(grid.index(c)), c);
    }

    /// MST total length never exceeds a star topology from the first pin,
    /// and connects all terminals with exactly n-1 edges.
    #[test]
    fn mst_is_no_worse_than_star(
        points in proptest::collection::vec((0u32..20, 0u32..20), 2..10),
    ) {
        let mut terminals: Vec<GcellCoord> =
            points.iter().map(|&(gx, gy)| GcellCoord { gx, gy }).collect();
        terminals.sort_by_key(|c| (c.gy, c.gx));
        terminals.dedup();
        prop_assume!(terminals.len() >= 2);
        let segs = mst_segments(&terminals);
        prop_assert_eq!(segs.len(), terminals.len() - 1);
        let mst_len: u32 = segs.iter().map(Segment::manhattan_len).sum();
        let star_len: u32 = terminals[1..]
            .iter()
            .map(|t| t.gx.abs_diff(terminals[0].gx) + t.gy.abs_diff(terminals[0].gy))
            .sum();
        prop_assert!(mst_len <= star_len);
    }

    /// Every pattern-routing candidate is a valid minimal-length path.
    #[test]
    fn pattern_candidates_are_monotone_paths(
        ax in 0u32..10, ay in 0u32..10, bx in 0u32..10, by in 0u32..10,
    ) {
        let seg = Segment {
            from: GcellCoord { gx: ax, gy: ay },
            to: GcellCoord { gx: bx, gy: by },
        };
        for path in candidate_paths(&seg) {
            prop_assert_eq!(path[0], seg.from);
            prop_assert_eq!(*path.last().unwrap(), seg.to);
            prop_assert_eq!(path.len() as u32, seg.manhattan_len() + 1);
            for w in path.windows(2) {
                let d = w[0].gx.abs_diff(w[1].gx) + w[0].gy.abs_diff(w[1].gy);
                prop_assert_eq!(d, 1);
            }
        }
    }

    /// Demand accounting: adding a path puts exactly path_len-1 units on
    /// the field, and removing it restores zero.
    #[test]
    fn edge_field_path_accounting(
        ax in 0u32..8, ay in 0u32..8, bx in 0u32..8, by in 0u32..8,
    ) {
        let grid = GcellGrid::new(Rect::new(0.0, 0.0, 8.0, 8.0), 8, 8);
        let seg = Segment {
            from: GcellCoord { gx: ax, gy: ay },
            to: GcellCoord { gx: bx, gy: by },
        };
        let path = &candidate_paths(&seg)[0];
        let mut f = EdgeField::zeros(&grid);
        f.add_path(path, 1.0);
        let total = f.total(lhnn_suite::route::Dir::H) + f.total(lhnn_suite::route::Dir::V);
        prop_assert!((total - (path.len() as f32 - 1.0)).abs() < 1e-5);
        f.add_path(path, -1.0);
        let total2 = f.total(lhnn_suite::route::Dir::H) + f.total(lhnn_suite::route::Dir::V);
        prop_assert!(total2.abs() < 1e-5);
    }

    /// Matrix concat/slice roundtrip.
    #[test]
    fn concat_slice_roundtrip(
        rows in 1usize..6,
        ca in 1usize..5,
        cb in 1usize..5,
        data in proptest::collection::vec(-2.0f32..2.0, 1..60),
    ) {
        let mut d = data;
        d.resize(rows * (ca + cb), 0.25);
        let a = Matrix::from_vec(rows, ca, d[..rows * ca].to_vec()).unwrap();
        let b = Matrix::from_vec(rows, cb, d[rows * ca..].to_vec()).unwrap();
        let cat = a.concat_cols(&b);
        prop_assert_eq!(cat.slice_cols(0, ca), a);
        prop_assert_eq!(cat.slice_cols(ca, ca + cb), b);
    }
}
