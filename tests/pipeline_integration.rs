//! Cross-crate integration tests: the full generate → place → route →
//! graph → train → predict pipeline, exercised end-to-end.

use lhnn_suite::graph::{ChannelMode, FeatureSet, LhGraph, LhGraphConfig, Targets};
use lhnn_suite::model::{
    evaluate, predict_map, train, AblationSpec, Lhnn, LhnnConfig, Sample, TrainConfig,
};
use lhnn_suite::netlist::synth::{generate, SynthConfig};
use lhnn_suite::place::GlobalPlacer;
use lhnn_suite::route::{route, Dir, RouterConfig};

fn build_sample(seed: u64, n_cells: usize, grid_n: u32) -> Sample {
    let cfg = SynthConfig {
        name: format!("it{seed}"),
        seed,
        n_cells,
        grid_nx: grid_n,
        grid_ny: grid_n,
        ..SynthConfig::default()
    };
    let synth = generate(&cfg).expect("generate");
    let grid = cfg.grid();
    let placed = GlobalPlacer::default().place_synth(&synth, &grid).expect("place");
    let routed = route(
        &synth.circuit,
        &placed.placement,
        &grid,
        &synth.macro_rects,
        &RouterConfig::default(),
    )
    .expect("route");
    let graph = LhGraph::build(&synth.circuit, &placed.placement, &grid, &LhGraphConfig::default())
        .expect("graph");
    let (gd, nd) = FeatureSet::default_divisors();
    let features = FeatureSet::build(&graph, &synth.circuit, &placed.placement, &grid)
        .expect("features")
        .scaled_fixed(&gd, &nd);
    Sample { name: cfg.name, graph, features, targets: Targets::from_labels(&routed.labels) }
}

#[test]
fn end_to_end_pipeline_shapes_are_consistent() {
    let s = build_sample(1, 300, 12);
    let n = s.graph.num_gcells();
    assert_eq!(n, 144);
    assert_eq!(s.features.gcell.rows(), n);
    assert_eq!(s.features.gcell.cols(), 4);
    assert_eq!(s.features.gnet.rows(), s.graph.num_gnets());
    assert_eq!(s.targets.demand.shape(), (n, 2));
    assert_eq!(s.targets.congestion.shape(), (n, 2));
}

#[test]
fn lhnn_overfits_one_design() {
    // Sanity: with enough epochs on a single design the model should fit
    // its training labels well — validates gradients through every block.
    let s = build_sample(2, 300, 12);
    let mut model = Lhnn::new(LhnnConfig::default(), 0);
    let cfg = TrainConfig { epochs: 120, ..Default::default() };
    train(&mut model, std::slice::from_ref(&s), &AblationSpec::full(), &cfg);
    let eval = evaluate(&model, std::slice::from_ref(&s), &AblationSpec::full());
    assert!(eval.f1 > 0.6, "train-set F1 too low: {}", eval.f1);
    assert!(eval.accuracy > 0.85, "train-set accuracy too low: {}", eval.accuracy);
}

#[test]
fn lhnn_generalizes_across_designs() {
    let train_set: Vec<Sample> = (10..14).map(|s| build_sample(s, 350, 12)).collect();
    let test_set = vec![build_sample(99, 350, 12)];
    let mut model = Lhnn::new(LhnnConfig::default(), 0);
    let cfg = TrainConfig { epochs: 60, ..Default::default() };
    train(&mut model, &train_set, &AblationSpec::full(), &cfg);
    let eval = evaluate(&model, &test_set, &AblationSpec::full());
    // a weak but meaningful bar: clearly better than chance on a ~15-25%
    // positive-rate task
    assert!(eval.f1 > 0.3, "test F1 too low: {}", eval.f1);
    assert!(eval.accuracy > 0.7, "test accuracy too low: {}", eval.accuracy);
}

#[test]
fn duo_channel_predicts_both_directions() {
    let s = build_sample(3, 300, 12);
    let cfg = LhnnConfig { channel_mode: ChannelMode::Duo, ..Default::default() };
    let mut model = Lhnn::new(cfg, 0);
    let tcfg = TrainConfig { epochs: 30, ..Default::default() };
    train(&mut model, std::slice::from_ref(&s), &AblationSpec::full(), &tcfg);
    let eval = evaluate(&model, std::slice::from_ref(&s), &AblationSpec::full());
    assert!(eval.f1 > 0.3, "duo F1: {}", eval.f1);
}

#[test]
fn ablations_train_without_panicking_and_full_wins_on_train_fit() {
    let s = build_sample(4, 300, 12);
    let cfg = TrainConfig { epochs: 40, ..Default::default() };
    let mut scores = Vec::new();
    for spec in [AblationSpec::full(), AblationSpec::without_hypermp()] {
        let mut model = Lhnn::new(LhnnConfig::default(), 0);
        train(&mut model, std::slice::from_ref(&s), &spec, &cfg);
        let eval = evaluate(&model, std::slice::from_ref(&s), &spec);
        scores.push((spec.label(), eval.f1));
    }
    assert!(
        scores[0].1 >= scores[1].1 * 0.9,
        "full model should not be clearly worse than -hypermp on its own training design: {scores:?}"
    );
}

#[test]
fn router_labels_match_demand_threshold() {
    // The congestion target must be exactly demand > capacity per g-cell.
    let cfg = SynthConfig {
        name: "lbl".into(),
        n_cells: 200,
        grid_nx: 10,
        grid_ny: 10,
        ..SynthConfig::default()
    };
    let synth = generate(&cfg).expect("generate");
    let grid = cfg.grid();
    let placed = GlobalPlacer::default().place_synth(&synth, &grid).expect("place");
    let routed = route(
        &synth.circuit,
        &placed.placement,
        &grid,
        &synth.macro_rects,
        &RouterConfig::default(),
    )
    .expect("route");
    let mask = routed.labels.congestion(Dir::H);
    for i in 0..mask.len() {
        assert_eq!(
            mask[i],
            routed.labels.demand_h[i] > routed.labels.capacity_h[i],
            "congestion mask mismatch at {i}"
        );
    }
}

#[test]
fn predict_map_is_deterministic_and_probabilistic() {
    let s = build_sample(5, 250, 12);
    let model = Lhnn::new(LhnnConfig::default(), 1);
    let (p1, l1) = predict_map(&model, &s, &AblationSpec::full());
    let (p2, _) = predict_map(&model, &s, &AblationSpec::full());
    assert_eq!(p1, p2);
    assert!(p1.iter().all(|p| (0.0..=1.0).contains(p)));
    assert!(l1.iter().all(|&y| y == 0.0 || y == 1.0));
}
